//! The boundary-node lower-bound estimator (§5).
//!
//! Space is partitioned into non-overlapping grid cells. A **boundary
//! node** of a cell is a node with an edge to or from a node in a
//! different cell; any path between different cells must pass through
//! a boundary node on each side. The precomputation stores, per the
//! paper:
//!
//! 1. for every ordered pair of cells `(C₁, C₂)`, the minimum network
//!    distance from a boundary node of `C₁` to a boundary node of `C₂`
//!    (computed with one multi-source Dijkstra per cell, all boundary
//!    nodes collapsed into a single start);
//! 2. for every node, the distance to its nearest own-cell boundary
//!    node (forward), and from its nearest own-cell boundary node
//!    (backward).
//!
//! The estimate `d(n,b₃) + d(b₁,b₂) + d(b₄,e)` is a lower bound on the
//! network distance (Theorem 1); dividing by `v_max` gives a
//! travel-time lower bound. The [`WeightMode::BestTime`] extension
//! precomputes over *best-case per-edge travel times*
//! (`length / max-speed-of-that-edge`) instead, which remains a lower
//! bound but is tighter whenever the fastest roads don't go where the
//! crow flies.
//!
//! # Continental scale: partitioned precompute
//!
//! [`BoundaryLb::build`] materializes the full forward and reverse
//! weighted adjacency and runs `2 · grid²` whole-graph Dijkstras —
//! fine at metro scale, prohibitive at 10⁶ nodes.
//! [`BoundaryLb::build_partitioned`] keeps the same Theorem 1 shape
//! but works per partition over any [`NetworkSource`]:
//!
//! * `d_out`/`d_in` come from Dijkstras **restricted to each
//!   partition's induced subgraph** (the prefix of any path up to its
//!   first partition exit stays inside the source partition, so the
//!   restricted distance to the nearest boundary node is still a
//!   lower bound on that prefix — and a tighter one than the global
//!   distance [`BoundaryLb::build`] uses);
//! * the all-pairs boundary-to-boundary table is computed on a small
//!   **boundary interface graph**: one vertex per boundary node,
//!   exact weights on partition-crossing edges, and an implicit
//!   complete fan between same-partition boundary nodes weighted by
//!   the Euclidean lower bound (divided by `v_max` in
//!   [`WeightMode::BestTime`]). Every interface hop under-estimates
//!   the true segment it stands for, so interface distances
//!   under-estimate the true boundary-to-boundary distances and the
//!   table entries remain valid Theorem 1 middle terms.
//!
//! Peak memory is one partition's subgraph per worker plus the
//! interface graph — never the whole network's adjacency.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use roadnet::{Edge, NetworkSource, NodeId, Point, RoadNetwork};

use crate::estimator::LowerBoundEstimator;
use crate::Result;

/// What the precomputed tables measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightMode {
    /// Network distance in miles (the paper's presentation); estimates
    /// divide by the global `v_max`.
    Distance,
    /// Best-case travel time in minutes per edge
    /// (`length / edge-max-speed`); estimates are used directly.
    BestTime,
}

/// The precomputed boundary-node estimator.
///
/// `PartialEq` compares every table bit-for-bit — the live-update
/// property tests use it to prove that an estimator reused across a
/// traffic delta equals one rebuilt from scratch.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundaryLb {
    /// Cells per axis for geometric builds; 0 for connectivity
    /// partitionings, which have no per-axis structure.
    grid: usize,
    /// Number of groups in the partitioning (`grid²` for grid builds).
    n_groups: usize,
    mode: WeightMode,
    v_max: f64,
    cell_of_node: Vec<u32>,
    /// node → nearest own-cell boundary node (forward direction).
    d_out: Vec<f64>,
    /// nearest own-cell boundary node → node (i.e. entering distance).
    d_in: Vec<f64>,
    /// `table[c1 * n_groups + c2]` = min boundary-to-boundary weight.
    table: Vec<f64>,
}

impl BoundaryLb {
    /// Precompute over `net` with a `grid × grid` space partitioning.
    ///
    /// Runs `2 · grid²` multi-source Dijkstras, parallelized across
    /// available cores with `std::thread` scoped threads.
    pub fn build(net: &RoadNetwork, grid: usize, mode: WeightMode) -> Result<BoundaryLb> {
        let grid = grid.max(1);
        let n = net.n_nodes();
        let n_cells = grid * grid;

        // --- geometry: assign nodes to cells --------------------------------
        let (min, max) = net
            .bounding_box()
            .unwrap_or((Point { x: 0.0, y: 0.0 }, Point { x: 1.0, y: 1.0 }));
        let span_x = (max.x - min.x).max(1e-9);
        let span_y = (max.y - min.y).max(1e-9);
        let cell_of = |p: &Point| -> u32 {
            let cx = (((p.x - min.x) / span_x) * grid as f64).floor() as usize;
            let cy = (((p.y - min.y) / span_y) * grid as f64).floor() as usize;
            (cy.min(grid - 1) * grid + cx.min(grid - 1)) as u32
        };
        let mut cell_of_node = vec![0u32; n];
        for u in net.node_ids() {
            cell_of_node[u.index()] = cell_of(net.point(u)?);
        }

        // --- adjacency with weights -----------------------------------------
        let mut fwd: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        let mut rev: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for u in net.node_ids() {
            for e in net.neighbors(u)? {
                let w = match mode {
                    WeightMode::Distance => e.distance,
                    WeightMode::BestTime => e.distance / net.pattern(e.pattern)?.max_speed(),
                };
                fwd[u.index()].push((e.to.0, w));
                rev[e.to.index()].push((u.0, w));
            }
        }

        // --- boundary nodes per cell -----------------------------------------
        let mut boundary: Vec<Vec<u32>> = vec![Vec::new(); n_cells];
        for u in 0..n {
            let cu = cell_of_node[u];
            let crosses = fwd[u].iter().any(|&(v, _)| cell_of_node[v as usize] != cu)
                || rev[u].iter().any(|&(v, _)| cell_of_node[v as usize] != cu);
            if crosses {
                boundary[cu as usize].push(u as u32);
            }
        }

        // --- per-cell Dijkstras, parallel -------------------------------------
        struct CellResult {
            cell: usize,
            d_out: Vec<(u32, f64)>,
            d_in: Vec<(u32, f64)>,
            row: Vec<f64>,
        }

        let workers = std::thread::available_parallelism()
            .map_or(4, |p| p.get())
            .min(n_cells.max(1));
        let joined: Vec<std::thread::Result<Vec<CellResult>>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let boundary = &boundary;
                let cell_of_node = &cell_of_node;
                let fwd = &fwd;
                let rev = &rev;
                handles.push(scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut cell = w;
                    while cell < n_cells {
                        let sources = &boundary[cell];
                        // forward: boundary → everyone (fills d_in for
                        // this cell's nodes and the cell-to-cell row)
                        let dist_f = multi_source_dijkstra(fwd, sources, usize::MAX);
                        // backward: everyone → boundary
                        let dist_b = multi_source_dijkstra(rev, sources, usize::MAX);
                        let mut d_in = Vec::new();
                        let mut d_out = Vec::new();
                        for (u, &cu) in cell_of_node.iter().enumerate() {
                            if cu as usize == cell {
                                d_in.push((u as u32, dist_f[u]));
                                d_out.push((u as u32, dist_b[u]));
                            }
                        }
                        let mut row = vec![f64::INFINITY; n_cells];
                        for (c2, bnodes) in boundary.iter().enumerate() {
                            let mut best = f64::INFINITY;
                            for &b in bnodes {
                                best = best.min(dist_f[b as usize]);
                            }
                            row[c2] = best;
                        }
                        row[cell] = 0.0;
                        out.push(CellResult {
                            cell,
                            d_out,
                            d_in,
                            row,
                        });
                        cell += workers;
                    }
                    out
                }));
            }
            handles.into_iter().map(|h| h.join()).collect()
        });
        let mut results: Vec<CellResult> = Vec::new();
        for j in joined {
            results.extend(j.map_err(|_| {
                crate::AllFpError::Panicked("boundary precompute worker panicked".to_string())
            })?);
        }

        let mut d_out = vec![f64::INFINITY; n];
        let mut d_in = vec![f64::INFINITY; n];
        let mut table = vec![f64::INFINITY; n_cells * n_cells];
        for r in results {
            for (u, d) in r.d_out {
                d_out[u as usize] = d;
            }
            for (u, d) in r.d_in {
                d_in[u as usize] = d;
            }
            table[r.cell * n_cells..(r.cell + 1) * n_cells].copy_from_slice(&r.row);
        }

        Ok(BoundaryLb {
            grid,
            n_groups: n_cells,
            mode,
            v_max: net.max_speed(),
            cell_of_node,
            d_out,
            d_in,
            table,
        })
    }

    /// Precompute over an explicit partition assignment, one group id
    /// per node (`0..n_groups`), without ever materializing the whole
    /// network's adjacency. See the module docs for why the result is
    /// still a valid Theorem 1 lower bound.
    ///
    /// Works over any [`NetworkSource`] — a lazily generated
    /// continental network or a disk-resident CCAM store — and
    /// parallelizes the per-partition Dijkstras and the interface
    /// table rows across available cores. The table is
    /// `n_groups × n_groups`: choose a coarse partitioning
    /// (hundreds of groups, not tens of thousands) at continental
    /// scale.
    pub fn build_partitioned<S: NetworkSource + Sync + ?Sized>(
        src: &S,
        group_of_node: &[u32],
        n_groups: usize,
        mode: WeightMode,
    ) -> Result<BoundaryLb> {
        let n = src.n_nodes();
        if group_of_node.len() != n {
            return Err(crate::AllFpError::Internal(
                "partition assignment length must equal node count",
            ));
        }
        let n_groups = n_groups.max(1);
        if group_of_node.iter().any(|&g| g as usize >= n_groups) {
            return Err(crate::AllFpError::Internal(
                "partition group id out of range",
            ));
        }
        let v_max = src.max_speed();
        let workers = std::thread::available_parallelism()
            .map_or(4, |p| p.get())
            .min(n.max(1));

        // --- phase 1: one parallel edge sweep — boundary nodes and
        // partition-crossing edges (exact weights) ---------------------
        struct Sweep {
            /// Nodes incident to a crossing edge (either side).
            marks: Vec<u32>,
            /// (from, to, weight) for every crossing edge.
            cross: Vec<(u32, u32, f64)>,
        }
        let chunk = n.div_ceil(workers).max(1);
        let swept: Vec<std::thread::Result<Result<Sweep>>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let (lo, hi) = (w * chunk, ((w + 1) * chunk).min(n));
                handles.push(scope.spawn(move || -> Result<Sweep> {
                    let mut edges: Vec<Edge> = Vec::new();
                    let mut out = Sweep {
                        marks: Vec::new(),
                        cross: Vec::new(),
                    };
                    for u in lo..hi.max(lo) {
                        let gu = group_of_node[u];
                        src.successors_into(NodeId(u as u32), &mut edges)?;
                        for e in &edges {
                            if group_of_node[e.to.index()] != gu {
                                out.marks.push(u as u32);
                                out.marks.push(e.to.0);
                                out.cross
                                    .push((u as u32, e.to.0, edge_weight(src, e, mode)?));
                            }
                        }
                    }
                    Ok(out)
                }));
            }
            handles.into_iter().map(|h| h.join()).collect()
        });
        let mut is_boundary = vec![false; n];
        let mut cross: Vec<(u32, u32, f64)> = Vec::new();
        for j in swept {
            let s = j.map_err(|_| {
                crate::AllFpError::Panicked("partitioned estimator sweep worker panicked".into())
            })??;
            for m in s.marks {
                is_boundary[m as usize] = true;
            }
            cross.extend(s.cross);
        }

        let mut members: Vec<Vec<u32>> = vec![Vec::new(); n_groups];
        for (u, &g) in group_of_node.iter().enumerate() {
            members[g as usize].push(u as u32);
        }

        // --- phase 2: restricted per-partition Dijkstras for
        // d_out / d_in (one partition subgraph in memory per worker) ---
        struct GroupDists {
            /// (node, to-boundary, from-boundary) per member.
            d: Vec<(u32, f64, f64)>,
        }
        let grouped: Vec<std::thread::Result<Result<Vec<GroupDists>>>> =
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(workers);
                for w in 0..workers {
                    let members = &members;
                    let is_boundary = &is_boundary;
                    handles.push(scope.spawn(move || -> Result<Vec<GroupDists>> {
                        let mut local_of = vec![u32::MAX; n];
                        let mut edges: Vec<Edge> = Vec::new();
                        let mut out = Vec::new();
                        let mut g = w;
                        while g < n_groups {
                            let m = &members[g];
                            for (i, &u) in m.iter().enumerate() {
                                local_of[u as usize] = i as u32;
                            }
                            let mut fwd: Vec<Vec<(u32, f64)>> = vec![Vec::new(); m.len()];
                            let mut rev: Vec<Vec<(u32, f64)>> = vec![Vec::new(); m.len()];
                            for (lu, &u) in m.iter().enumerate() {
                                src.successors_into(NodeId(u), &mut edges)?;
                                for e in &edges {
                                    let lv = local_of[e.to.index()];
                                    // local ids are reset after each
                                    // group, so a live entry means
                                    // `e.to` is in this group.
                                    if lv != u32::MAX {
                                        let wgt = edge_weight(src, e, mode)?;
                                        fwd[lu].push((lv, wgt));
                                        rev[lv as usize].push((lu as u32, wgt));
                                    }
                                }
                            }
                            let sources: Vec<u32> = m
                                .iter()
                                .enumerate()
                                .filter(|&(_, &u)| is_boundary[u as usize])
                                .map(|(i, _)| i as u32)
                                .collect();
                            let dist_f = multi_source_dijkstra(&fwd, &sources, usize::MAX);
                            let dist_b = multi_source_dijkstra(&rev, &sources, usize::MAX);
                            out.push(GroupDists {
                                d: m.iter()
                                    .enumerate()
                                    .map(|(i, &u)| (u, dist_b[i], dist_f[i]))
                                    .collect(),
                            });
                            for &u in m {
                                local_of[u as usize] = u32::MAX;
                            }
                            g += workers;
                        }
                        Ok(out)
                    }));
                }
                handles.into_iter().map(|h| h.join()).collect()
            });
        let mut d_out = vec![f64::INFINITY; n];
        let mut d_in = vec![f64::INFINITY; n];
        for j in grouped {
            let gs = j.map_err(|_| {
                crate::AllFpError::Panicked("partitioned estimator group worker panicked".into())
            })??;
            for gd in gs {
                for (u, out_d, in_d) in gd.d {
                    d_out[u as usize] = out_d;
                    d_in[u as usize] = in_d;
                }
            }
        }

        // --- phase 3: boundary interface graph and the group table ----
        let bnodes: Vec<u32> = (0..n as u32).filter(|&u| is_boundary[u as usize]).collect();
        let mut iface_of = vec![u32::MAX; n];
        for (i, &b) in bnodes.iter().enumerate() {
            iface_of[b as usize] = i as u32;
        }
        let mut pts = Vec::with_capacity(bnodes.len());
        for &b in &bnodes {
            pts.push(src.find_node(NodeId(b))?);
        }
        let iface_group: Vec<u32> = bnodes.iter().map(|&b| group_of_node[b as usize]).collect();
        let mut by_group: Vec<Vec<u32>> = vec![Vec::new(); n_groups];
        for (i, &g) in iface_group.iter().enumerate() {
            by_group[g as usize].push(i as u32);
        }
        let mut cross_adj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); bnodes.len()];
        for (u, v, wgt) in cross {
            cross_adj[iface_of[u as usize] as usize].push((iface_of[v as usize], wgt));
        }
        // Euclidean miles are the lower-bound currency; BestTime tables
        // measure minutes, so divide the implicit hops by v_max there.
        let euclid_div = match mode {
            WeightMode::Distance => 1.0,
            WeightMode::BestTime => v_max,
        };
        type RowBatch = Vec<(usize, Vec<f64>)>;
        let rows: Vec<std::thread::Result<RowBatch>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let by_group = &by_group;
                let iface_group = &iface_group;
                let cross_adj = &cross_adj;
                let pts = &pts;
                handles.push(scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut g = w;
                    while g < n_groups {
                        let dist = interface_dijkstra(
                            cross_adj,
                            iface_group,
                            by_group,
                            pts,
                            euclid_div,
                            &by_group[g],
                        );
                        let mut row = vec![f64::INFINITY; n_groups];
                        for (i, &d) in dist.iter().enumerate() {
                            let g2 = iface_group[i] as usize;
                            if d < row[g2] {
                                row[g2] = d;
                            }
                        }
                        row[g] = 0.0;
                        out.push((g, row));
                        g += workers;
                    }
                    out
                }));
            }
            handles.into_iter().map(|h| h.join()).collect()
        });
        let mut table = vec![f64::INFINITY; n_groups * n_groups];
        for j in rows {
            for (g, row) in j.map_err(|_| {
                crate::AllFpError::Panicked("partitioned estimator table worker panicked".into())
            })? {
                table[g * n_groups..(g + 1) * n_groups].copy_from_slice(&row);
            }
        }

        Ok(BoundaryLb {
            grid: 0,
            n_groups,
            mode,
            v_max,
            cell_of_node: group_of_node.to_vec(),
            d_out,
            d_in,
            table,
        })
    }

    /// [`BoundaryLb::build_partitioned`] over a connectivity-clustered
    /// partitioning from [`ccam::partition_assignment`], its byte
    /// budget sized so roughly `target_groups` groups come out.
    ///
    /// This is the continental-scale entry point: partitions follow
    /// the same clustering CCAM packs pages by, so boundary sets stay
    /// small, and nothing network-sized beyond the assignment vector
    /// is ever resident. The cluster sharding layer (`fp-cluster`)
    /// consumes the same assignment, so the estimator's partition and
    /// the serving tier's shards are one artifact.
    pub fn build_partitioned_auto<S: NetworkSource + Sync + ?Sized>(
        src: &S,
        target_groups: usize,
        mode: WeightMode,
    ) -> Result<BoundaryLb> {
        let (group_of, n_groups) =
            ccam::partition_assignment(src, target_groups).map_err(|e| match e {
                ccam::CcamError::Network(ne) => crate::AllFpError::Network(ne),
                _ => crate::AllFpError::Internal("connectivity partitioning failed"),
            })?;
        Self::build_partitioned(src, &group_of, n_groups, mode)
    }

    /// Cells per axis of a geometric [`BoundaryLb::build`]; 0 for
    /// connectivity-partitioned builds.
    pub fn grid(&self) -> usize {
        self.grid
    }

    /// Number of groups in the partitioning (`grid²` for grid builds).
    pub fn n_groups(&self) -> usize {
        self.n_groups
    }

    /// This estimator with its tables kept verbatim and only the
    /// `v_max` divisor replaced.
    ///
    /// Sound exactly when the tables themselves are still valid:
    /// [`WeightMode::Distance`] tables depend only on edge lengths, so
    /// a speed-pattern delta leaves them exact and only the network's
    /// (monotonically growing, because the pattern table is
    /// append-only) maximum speed needs refreshing. The epoch layer
    /// uses this to republish the estimator without re-running any
    /// Dijkstras. Not valid for [`WeightMode::BestTime`] tables when an
    /// edge's best-case speed changed — the epoch layer rebuilds in
    /// that case.
    pub fn with_v_max(&self, v_max: f64) -> BoundaryLb {
        assert!(v_max > 0.0, "maximum speed must be positive");
        BoundaryLb {
            v_max,
            ..self.clone()
        }
    }

    /// The weight mode the tables were computed under.
    pub fn mode(&self) -> WeightMode {
        self.mode
    }

    /// Raw estimate in table units (miles or minutes), before the
    /// `v_max` division; 0 when the bound does not apply (same cell,
    /// unknown node, unreachable boundary pair).
    pub fn raw_estimate(&self, from: NodeId, to: NodeId) -> f64 {
        let (Some(&cf), Some(&ct)) = (
            self.cell_of_node.get(from.index()),
            self.cell_of_node.get(to.index()),
        ) else {
            return 0.0;
        };
        if cf == ct {
            return 0.0;
        }
        let n_cells = self.n_groups;
        let through = self.table[cf as usize * n_cells + ct as usize];
        let total = self.d_out[from.index()] + through + self.d_in[to.index()];
        if total.is_finite() {
            total
        } else {
            0.0
        }
    }
}

impl LowerBoundEstimator for BoundaryLb {
    fn travel_lower_bound(&self, from: NodeId, _: Point, to: NodeId, _: Point) -> f64 {
        let raw = self.raw_estimate(from, to);
        match self.mode {
            WeightMode::Distance => raw / self.v_max,
            WeightMode::BestTime => raw,
        }
    }

    fn name(&self) -> &'static str {
        match self.mode {
            WeightMode::Distance => "bdLB",
            WeightMode::BestTime => "bdLB-time",
        }
    }
}

/// The precompute weight of one edge under a [`WeightMode`].
fn edge_weight<S: NetworkSource + ?Sized>(src: &S, e: &Edge, mode: WeightMode) -> Result<f64> {
    Ok(match mode {
        WeightMode::Distance => e.distance,
        WeightMode::BestTime => e.distance / src.pattern(e.pattern)?.max_speed(),
    })
}

/// Multi-source Dijkstra over the boundary interface graph: explicit
/// partition-crossing edges plus an *implicit* complete fan between
/// same-partition boundary nodes, weighted by Euclidean distance over
/// `euclid_div` (1 for distance tables, `v_max` for best-time tables).
/// The fan is relaxed on the fly so the interface graph never
/// materializes the per-partition cliques.
fn interface_dijkstra(
    cross: &[Vec<(u32, f64)>],
    group_of: &[u32],
    by_group: &[Vec<u32>],
    pts: &[Point],
    euclid_div: f64,
    sources: &[u32],
) -> Vec<f64> {
    let mut dist = vec![f64::INFINITY; cross.len()];
    let mut heap = BinaryHeap::with_capacity(sources.len() * 2);
    for &s in sources {
        dist[s as usize] = 0.0;
        heap.push(HeapItem { dist: 0.0, node: s });
    }
    while let Some(HeapItem { dist: d, node: u }) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for &(v, w) in &cross[u as usize] {
            let nd = d + w;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(HeapItem { dist: nd, node: v });
            }
        }
        let pu = pts[u as usize];
        for &v in &by_group[group_of[u as usize] as usize] {
            if v == u {
                continue;
            }
            let nd = d + pu.distance(&pts[v as usize]) / euclid_div;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(HeapItem { dist: nd, node: v });
            }
        }
    }
    dist
}

/// Min-heap item for Dijkstra.
#[derive(PartialEq)]
struct HeapItem {
    dist: f64,
    node: u32,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // reversed: BinaryHeap is a max-heap. `total_cmp` keeps even a
        // NaN distance (impossible by construction) deterministic.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Multi-source Dijkstra over an adjacency list; stops after settling
/// `settle_limit` nodes.
fn multi_source_dijkstra(
    adj: &[Vec<(u32, f64)>],
    sources: &[u32],
    settle_limit: usize,
) -> Vec<f64> {
    let mut dist = vec![f64::INFINITY; adj.len()];
    let mut heap = BinaryHeap::with_capacity(sources.len() * 2);
    for &s in sources {
        dist[s as usize] = 0.0;
        heap.push(HeapItem { dist: 0.0, node: s });
    }
    let mut settled = 0usize;
    while let Some(HeapItem { dist: d, node: u }) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        settled += 1;
        if settled > settle_limit {
            break;
        }
        for &(v, w) in &adj[u as usize] {
            let nd = d + w;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(HeapItem { dist: nd, node: v });
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::NaiveLb;
    use roadnet::generators::{grid, suffolk_like, MetroConfig};
    use traffic::RoadClass;

    #[test]
    fn same_cell_estimates_zero() {
        let net = grid(6, 6, 0.1, RoadClass::LocalOutside).unwrap();
        let lb = BoundaryLb::build(&net, 1, WeightMode::Distance).unwrap();
        let p = *net.point(NodeId(0)).unwrap();
        let q = *net.point(NodeId(35)).unwrap();
        assert_eq!(lb.travel_lower_bound(NodeId(0), p, NodeId(35), q), 0.0);
    }

    #[test]
    fn is_lower_bound_on_network_distance() {
        // On a uniform grid the true network distance is the Manhattan
        // distance; the estimate must never exceed it.
        let spacing = 0.25;
        let net = grid(10, 10, spacing, RoadClass::LocalOutside).unwrap();
        let lb = BoundaryLb::build(&net, 4, WeightMode::Distance).unwrap();
        for (a, b) in [(0u32, 99u32), (0, 9), (5, 77), (90, 9), (33, 66)] {
            let (a, b) = (NodeId(a), NodeId(b));
            let (ax, ay) = (a.index() % 10, a.index() / 10);
            let (bx, by) = (b.index() % 10, b.index() / 10);
            let manhattan =
                spacing * ((ax as f64 - bx as f64).abs() + (ay as f64 - by as f64).abs());
            let est = lb.raw_estimate(a, b);
            assert!(
                est <= manhattan + 1e-9,
                "estimate {est} exceeds true distance {manhattan} for {a}->{b}"
            );
        }
    }

    #[test]
    fn tighter_than_naive_on_detour_networks() {
        // Two rows of nodes connected only at the far ends: the network
        // distance between vertically-adjacent nodes is a long detour,
        // which bdLB sees and the Euclidean estimator cannot.
        let schema = traffic::PatternSchema::table1().unwrap();
        let mut net = roadnet::RoadNetwork::with_schema(&schema);
        let n = 12;
        let mut top = Vec::new();
        let mut bot = Vec::new();
        for i in 0..n {
            top.push(net.add_node(i as f64, 1.0).unwrap());
            bot.push(net.add_node(i as f64, 0.0).unwrap());
        }
        for i in 0..n - 1 {
            net.add_bidirectional(top[i], top[i + 1], 1.0, RoadClass::LocalOutside)
                .unwrap();
            net.add_bidirectional(bot[i], bot[i + 1], 1.0, RoadClass::LocalOutside)
                .unwrap();
        }
        // single vertical link at the right end
        net.add_bidirectional(top[n - 1], bot[n - 1], 1.0, RoadClass::LocalOutside)
            .unwrap();

        let lb = BoundaryLb::build(&net, 6, WeightMode::Distance).unwrap();
        let naive = NaiveLb::new(net.max_speed());
        let (s, t) = (top[0], bot[0]);
        let (ps, pt) = (*net.point(s).unwrap(), *net.point(t).unwrap());
        let bd = lb.travel_lower_bound(s, ps, t, pt);
        let nv = naive.travel_lower_bound(s, ps, t, pt);
        // true network distance is 23 miles; naive sees 1 mile
        assert!(bd > nv * 3.0, "bd {bd} should dwarf naive {nv}");
        // and remains a lower bound on the true distance
        assert!(bd * net.max_speed() <= 23.0 + 1e-9);
    }

    #[test]
    fn best_time_mode_at_least_as_tight() {
        let net = suffolk_like(&MetroConfig::small(17)).unwrap();
        let dist = BoundaryLb::build(&net, 6, WeightMode::Distance).unwrap();
        let time = BoundaryLb::build(&net, 6, WeightMode::BestTime).unwrap();
        let ids: Vec<NodeId> = net.node_ids().step_by(97).collect();
        let mut tighter = 0;
        for &a in &ids {
            for &b in &ids {
                let pa = *net.point(a).unwrap();
                let pb = *net.point(b).unwrap();
                let d = dist.travel_lower_bound(a, pa, b, pb);
                let t = time.travel_lower_bound(a, pa, b, pb);
                assert!(t + 1e-9 >= d, "time-mode {t} looser than distance-mode {d}");
                if t > d + 1e-9 {
                    tighter += 1;
                }
            }
        }
        assert!(tighter > 0, "BestTime should strictly improve somewhere");
    }

    /// Weighted forward adjacency, test-side mirror of the build path.
    fn weighted_adj(net: &roadnet::RoadNetwork, mode: WeightMode) -> Vec<Vec<(u32, f64)>> {
        let mut fwd = vec![Vec::new(); net.n_nodes()];
        for u in net.node_ids() {
            for e in net.neighbors(u).unwrap() {
                let w = match mode {
                    WeightMode::Distance => e.distance,
                    WeightMode::BestTime => {
                        e.distance / net.pattern(e.pattern).unwrap().max_speed()
                    }
                };
                fwd[u.index()].push((e.to.0, w));
            }
        }
        fwd
    }

    #[test]
    fn partitioned_is_lower_bound_on_exact() {
        let net = suffolk_like(&MetroConfig::small(17)).unwrap();
        for mode in [WeightMode::Distance, WeightMode::BestTime] {
            let lb = BoundaryLb::build_partitioned_auto(&net, 12, mode).unwrap();
            assert_eq!(lb.grid(), 0);
            assert!(lb.n_groups() >= 2, "partitioning collapsed to one group");
            let adj = weighted_adj(&net, mode);
            for s in (0..net.n_nodes()).step_by(211) {
                let exact = multi_source_dijkstra(&adj, &[s as u32], usize::MAX);
                for t in (0..net.n_nodes()).step_by(97) {
                    let est = lb.raw_estimate(NodeId(s as u32), NodeId(t as u32));
                    assert!(
                        est <= exact[t] + 1e-9,
                        "{mode:?} estimate {est} exceeds exact {} for {s}->{t}",
                        exact[t]
                    );
                }
            }
        }
    }

    #[test]
    fn partitioned_tighter_than_naive_on_detour() {
        // Same two-row detour network as the grid-cell test, but with
        // an explicit column-pair partitioning: the interface graph
        // walks the whole detour with exact crossing-edge weights, so
        // the estimate recovers (almost) the true 23-mile distance.
        let schema = traffic::PatternSchema::table1().unwrap();
        let mut net = roadnet::RoadNetwork::with_schema(&schema);
        let n = 12;
        let mut top = Vec::new();
        let mut bot = Vec::new();
        for i in 0..n {
            top.push(net.add_node(i as f64, 1.0).unwrap());
            bot.push(net.add_node(i as f64, 0.0).unwrap());
        }
        for i in 0..n - 1 {
            net.add_bidirectional(top[i], top[i + 1], 1.0, RoadClass::LocalOutside)
                .unwrap();
            net.add_bidirectional(bot[i], bot[i + 1], 1.0, RoadClass::LocalOutside)
                .unwrap();
        }
        net.add_bidirectional(top[n - 1], bot[n - 1], 1.0, RoadClass::LocalOutside)
            .unwrap();

        // group = (column pair, row): 12 groups of 2 nodes
        let mut group_of = vec![0u32; net.n_nodes()];
        for i in 0..n {
            group_of[top[i].index()] = (i as u32 / 2) * 2;
            group_of[bot[i].index()] = (i as u32 / 2) * 2 + 1;
        }
        let lb = BoundaryLb::build_partitioned(&net, &group_of, n, WeightMode::Distance).unwrap();
        let naive = NaiveLb::new(net.max_speed());
        let (s, t) = (top[0], bot[0]);
        let (ps, pt) = (*net.point(s).unwrap(), *net.point(t).unwrap());
        let bd = lb.travel_lower_bound(s, ps, t, pt);
        let nv = naive.travel_lower_bound(s, ps, t, pt);
        assert!(bd > nv * 3.0, "partitioned bd {bd} should dwarf naive {nv}");
        // still a lower bound on the true 23-mile distance
        assert!(bd * net.max_speed() <= 23.0 + 1e-9);
    }

    #[test]
    fn partitioned_single_group_estimates_zero() {
        let net = grid(4, 4, 0.5, RoadClass::LocalOutside).unwrap();
        let lb = BoundaryLb::build_partitioned(&net, &[0u32; 16], 1, WeightMode::Distance).unwrap();
        assert_eq!(lb.n_groups(), 1);
        assert_eq!(lb.raw_estimate(NodeId(0), NodeId(15)), 0.0);
    }

    #[test]
    fn partitioned_rejects_bad_assignments() {
        let net = grid(3, 3, 0.5, RoadClass::LocalOutside).unwrap();
        // wrong length
        assert!(BoundaryLb::build_partitioned(&net, &[0u32; 5], 2, WeightMode::Distance).is_err());
        // group id out of range
        assert!(BoundaryLb::build_partitioned(&net, &[5u32; 9], 2, WeightMode::Distance).is_err());
    }

    #[test]
    fn partitioned_best_time_at_least_as_tight() {
        let net = suffolk_like(&MetroConfig::small(11)).unwrap();
        let dist = BoundaryLb::build_partitioned_auto(&net, 10, WeightMode::Distance).unwrap();
        let time = BoundaryLb::build_partitioned_auto(&net, 10, WeightMode::BestTime).unwrap();
        for a in (0..net.n_nodes()).step_by(131) {
            for b in (0..net.n_nodes()).step_by(89) {
                let (a, b) = (NodeId(a as u32), NodeId(b as u32));
                let pa = *net.point(a).unwrap();
                let pb = *net.point(b).unwrap();
                let d = dist.travel_lower_bound(a, pa, b, pb);
                let t = time.travel_lower_bound(a, pa, b, pb);
                assert!(t + 1e-9 >= d, "time-mode {t} looser than distance-mode {d}");
            }
        }
    }

    #[test]
    fn unknown_nodes_fall_back_to_zero() {
        let net = grid(3, 3, 0.5, RoadClass::LocalOutside).unwrap();
        let lb = BoundaryLb::build(&net, 2, WeightMode::Distance).unwrap();
        assert_eq!(lb.raw_estimate(NodeId(100), NodeId(0)), 0.0);
    }

    #[test]
    fn dijkstra_basics() {
        // 0 -> 1 (1.0), 1 -> 2 (2.0), 0 -> 2 (5.0)
        let adj = vec![vec![(1u32, 1.0), (2, 5.0)], vec![(2, 2.0)], vec![]];
        let d = multi_source_dijkstra(&adj, &[0], usize::MAX);
        assert_eq!(d, vec![0.0, 1.0, 3.0]);
        let d2 = multi_source_dijkstra(&adj, &[0, 1], usize::MAX);
        assert_eq!(d2, vec![0.0, 0.0, 2.0]);
        let none = multi_source_dijkstra(&adj, &[], usize::MAX);
        assert!(none.iter().all(|d| d.is_infinite()));
    }
}
