//! `IntAllFastestPaths` — time-interval fastest-path queries on
//! CapeCod road networks (the core contribution of the ICDE 2006
//! paper).
//!
//! Given a source `s`, an end node `e`, a **leaving-time interval**
//! `I`, and a day category, the engine answers:
//!
//! * the **allFP query** (Definition 4): a full partitioning of `I`
//!   into sub-intervals, each associated with the fastest path for
//!   every leaving instant in it — adjacent sub-intervals have
//!   *different* fastest paths;
//! * the **singleFP query**: the single best leaving instant (in fact,
//!   interval of instants) in `I` and its fastest path.
//!
//! # Algorithm (§4)
//!
//! The engine extends A\*: the priority queue holds *paths*, each
//! carrying its full travel-time function `T(l) + T_est` as a
//! piecewise-linear function of the leaving time `l ∈ I`, prioritized
//! by the function's minimum. Expanding a path `s ⇒ n` by an edge
//! `n → n_j` uses the compound operation of `fp-pwl`
//! ([`pwl::compose_travel`]); paths reaching `e` fold into the **lower
//! border** ([`pwl::Envelope`]); the search stops when the smallest
//! queue minimum is no less than the border's maximum. The first path
//! to reach `e` answers singleFP.
//!
//! # Estimators (§4–5)
//!
//! * [`NaiveLb`]: Euclidean distance over the network's maximum speed;
//! * [`BoundaryLb`]: the boundary-node estimator — space is cut into
//!   grid cells, cell-to-cell boundary distances and per-node
//!   nearest-boundary distances are precomputed, and Theorem 1 gives a
//!   (usually much tighter) lower bound. A `BestTime` weight mode
//!   tightens it further by precomputing over best-case travel times
//!   instead of distances (an extension measured in the ablations).
//!
//! # Baselines (§3, §6.3)
//!
//! [`baseline`] implements the classic fixed-instant A\* (the
//! "degraded" special case), the **discrete-time model** (one A\* per
//! time instant), and the **constant-speed** commercial-navigation
//! model, all used by the experiment harness.

mod boundary;
mod cache;
mod engine;
mod estimator;
mod query;

pub mod arrival;
pub mod baseline;

pub use arrival::{ArrivalAllFpAnswer, ArrivalPlanner, ArrivalQuerySpec, ArrivalSingleFpAnswer};
pub use boundary::{BoundaryLb, WeightMode};
pub use cache::{CacheCounters, CacheSession, TravelFnCache};
pub use engine::{build_estimator, Engine, EngineConfig};
pub use estimator::{EstimatorKind, LowerBoundEstimator, MaxEstimator, NaiveLb, ZeroLb};
pub use query::{AllFpAnswer, BatchStats, FastestPath, QuerySpec, QueryStats, SingleFpAnswer};

/// Errors from query evaluation.
#[derive(Debug)]
pub enum AllFpError {
    /// No path exists from source to target (for any leaving time).
    Unreachable {
        /// The query source.
        source: roadnet::NodeId,
        /// The query target.
        target: roadnet::NodeId,
    },
    /// The expansion budget was exhausted before termination.
    BudgetExhausted {
        /// Paths expanded before giving up.
        expansions: usize,
    },
    /// Propagated network error.
    Network(roadnet::NetworkError),
    /// Propagated traffic error.
    Traffic(traffic::TrafficError),
    /// Propagated function-algebra error.
    Pwl(pwl::PwlError),
}

impl std::fmt::Display for AllFpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllFpError::Unreachable { source, target } => {
                write!(f, "no path from {source} to {target}")
            }
            AllFpError::BudgetExhausted { expansions } => {
                write!(f, "expansion budget exhausted after {expansions} paths")
            }
            AllFpError::Network(e) => write!(f, "network error: {e}"),
            AllFpError::Traffic(e) => write!(f, "traffic error: {e}"),
            AllFpError::Pwl(e) => write!(f, "pwl error: {e}"),
        }
    }
}

impl std::error::Error for AllFpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AllFpError::Network(e) => Some(e),
            AllFpError::Traffic(e) => Some(e),
            AllFpError::Pwl(e) => Some(e),
            _ => None,
        }
    }
}

impl From<roadnet::NetworkError> for AllFpError {
    fn from(e: roadnet::NetworkError) -> Self {
        AllFpError::Network(e)
    }
}

impl From<traffic::TrafficError> for AllFpError {
    fn from(e: traffic::TrafficError) -> Self {
        AllFpError::Traffic(e)
    }
}

impl From<pwl::PwlError> for AllFpError {
    fn from(e: pwl::PwlError) -> Self {
        AllFpError::Pwl(e)
    }
}

/// Convenient `Result` alias for this crate.
pub type Result<T> = std::result::Result<T, AllFpError>;
