//! `IntAllFastestPaths` — time-interval fastest-path queries on
//! CapeCod road networks (the core contribution of the ICDE 2006
//! paper).
//!
//! Given a source `s`, an end node `e`, a **leaving-time interval**
//! `I`, and a day category, the engine answers:
//!
//! * the **allFP query** (Definition 4): a full partitioning of `I`
//!   into sub-intervals, each associated with the fastest path for
//!   every leaving instant in it — adjacent sub-intervals have
//!   *different* fastest paths;
//! * the **singleFP query**: the single best leaving instant (in fact,
//!   interval of instants) in `I` and its fastest path.
//!
//! # Algorithm (§4)
//!
//! The engine extends A\*: the priority queue holds *paths*, each
//! carrying its full travel-time function `T(l) + T_est` as a
//! piecewise-linear function of the leaving time `l ∈ I`, prioritized
//! by the function's minimum. Expanding a path `s ⇒ n` by an edge
//! `n → n_j` uses the compound operation of `fp-pwl`
//! ([`pwl::compose_travel`]); paths reaching `e` fold into the **lower
//! border** ([`pwl::Envelope`]); the search stops when the smallest
//! queue minimum is no less than the border's maximum. The first path
//! to reach `e` answers singleFP.
//!
//! # Estimators (§4–5)
//!
//! * [`NaiveLb`]: Euclidean distance over the network's maximum speed;
//! * [`BoundaryLb`]: the boundary-node estimator — space is cut into
//!   grid cells, cell-to-cell boundary distances and per-node
//!   nearest-boundary distances are precomputed, and Theorem 1 gives a
//!   (usually much tighter) lower bound. A `BestTime` weight mode
//!   tightens it further by precomputing over best-case travel times
//!   instead of distances (an extension measured in the ablations).
//!
//! # Baselines (§3, §6.3)
//!
//! [`baseline`] implements the classic fixed-instant A\* (the
//! "degraded" special case), the **discrete-time model** (one A\* per
//! time instant), and the **constant-speed** commercial-navigation
//! model, all used by the experiment harness.
//!
//! # Robustness (extension)
//!
//! Queries can carry a [`QueryBudget`] (wall-clock deadline and/or an
//! expansion cap); [`Engine::run_robust`] and
//! [`Engine::run_batch_robust`] answer such queries with a
//! [`QueryOutcome`] that **degrades instead of erroring** when the
//! budget trips — best-so-far exact paths plus a constant-speed
//! fallback route ([`DegradedAnswer`]). Batches accept a cooperative
//! [`CancelToken`], isolate panicking queries to their own result slot,
//! and surface storage faults through the typed [`EngineError`]
//! taxonomy. See `DESIGN.md` §9 for the full fault model.
//!
//! # Service (extension)
//!
//! [`service::QueryService`] wraps the engine behind a bounded
//! admission queue for long-running deployments: deadline-aware load
//! shedding with a typed [`service::Overloaded`] rejection, two
//! priority classes, a storage circuit breaker that routes queries to
//! a constant-speed fallback while the CCAM layer is unhealthy,
//! graceful drain, and a [`service::ServiceStats`] roll-up whose
//! counters reconcile exactly. See `DESIGN.md` §11.

#![warn(clippy::unwrap_used, clippy::expect_used, clippy::redundant_clone)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod boundary;
mod cache;
mod engine;
mod estimator;
mod query;

pub mod arrival;
pub mod backend;
pub mod baseline;
pub mod epoch;
pub mod service;

pub use arrival::{ArrivalAllFpAnswer, ArrivalPlanner, ArrivalQuerySpec, ArrivalSingleFpAnswer};
pub use backend::PathfindBackend;
pub use boundary::{BoundaryLb, WeightMode};
pub use cache::{CacheCounters, CacheSession, TravelFnCache};
pub use engine::{build_estimator, Engine, EngineConfig, RouteComposeMemo};
pub use epoch::{ApplyReport, Epoch, EpochId, EpochManager, EpochStats, LiveBackend, SweepReport};
pub use estimator::{EstimatorKind, LowerBoundEstimator, MaxEstimator, NaiveLb, ZeroLb};
pub use query::{
    AllFpAnswer, BatchStats, CancelToken, DegradedAnswer, DegradedReason, FastestPath, QueryBudget,
    QueryOutcome, QuerySpec, QueryStats, SingleFpAnswer,
};

/// Errors from query evaluation.
#[derive(Debug)]
pub enum AllFpError {
    /// No path exists from source to target (for any leaving time).
    Unreachable {
        /// The query source.
        source: roadnet::NodeId,
        /// The query target.
        target: roadnet::NodeId,
    },
    /// The expansion budget was exhausted before termination.
    BudgetExhausted {
        /// Paths expanded before giving up.
        expansions: usize,
    },
    /// The search was cancelled through a [`CancelToken`].
    Cancelled,
    /// The query was pinned to a network epoch that has already been
    /// retired (its last pin dropped before this query ran). Failing
    /// is mandatory: answering from a different epoch would silently
    /// violate the pin-at-admission consistency contract.
    EpochRetired {
        /// The unavailable epoch's id.
        epoch: u64,
    },
    /// A worker observed a panic (its own query's, or a teammate's
    /// that took the whole worker thread down) and converted it to an
    /// error instead of propagating it.
    Panicked(String),
    /// An internal invariant failed — a bug in this crate, reported as
    /// an error rather than a panic so one bad query cannot take down
    /// a batch.
    Internal(&'static str),
    /// Propagated network error.
    Network(roadnet::NetworkError),
    /// Propagated traffic error.
    Traffic(traffic::TrafficError),
    /// Propagated function-algebra error.
    Pwl(pwl::PwlError),
}

impl std::fmt::Display for AllFpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllFpError::Unreachable { source, target } => {
                write!(f, "no path from {source} to {target}")
            }
            AllFpError::BudgetExhausted { expansions } => {
                write!(f, "expansion budget exhausted after {expansions} paths")
            }
            AllFpError::Cancelled => write!(f, "query cancelled"),
            AllFpError::EpochRetired { epoch } => {
                write!(f, "pinned network epoch {epoch} already retired")
            }
            AllFpError::Panicked(msg) => write!(f, "query panicked: {msg}"),
            AllFpError::Internal(what) => write!(f, "internal invariant violated: {what}"),
            AllFpError::Network(e) => write!(f, "network error: {e}"),
            AllFpError::Traffic(e) => write!(f, "traffic error: {e}"),
            AllFpError::Pwl(e) => write!(f, "pwl error: {e}"),
        }
    }
}

impl std::error::Error for AllFpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AllFpError::Network(e) => Some(e),
            AllFpError::Traffic(e) => Some(e),
            AllFpError::Pwl(e) => Some(e),
            _ => None,
        }
    }
}

impl From<roadnet::NetworkError> for AllFpError {
    fn from(e: roadnet::NetworkError) -> Self {
        AllFpError::Network(e)
    }
}

impl From<traffic::TrafficError> for AllFpError {
    fn from(e: traffic::TrafficError) -> Self {
        AllFpError::Traffic(e)
    }
}

impl From<pwl::PwlError> for AllFpError {
    fn from(e: pwl::PwlError) -> Self {
        AllFpError::Pwl(e)
    }
}

/// Convenient `Result` alias for this crate.
pub type Result<T> = std::result::Result<T, AllFpError>;

/// The unified error taxonomy of the robust query APIs
/// ([`Engine::run_robust`], [`Engine::run_batch_robust`]).
///
/// It separates the conditions a caller handles differently: storage
/// faults (retryable or not, classified by
/// [`roadnet::StorageFaultKind`]), exhausted budgets that did *not*
/// degrade (legacy engine-level valve on the non-robust APIs),
/// cooperative cancellation, isolated query panics, and plain query
/// errors (unreachable targets and propagated algebra errors).
#[derive(Debug)]
pub enum EngineError {
    /// The storage layer failed; `kind` distinguishes detected
    /// corruption (never retried) from transient I/O (already retried
    /// by the buffer pool before surfacing here).
    Storage {
        /// Fault classification from the storage stack.
        kind: roadnet::StorageFaultKind,
        /// Human-readable description of the underlying fault.
        message: String,
    },
    /// An expansion budget was exhausted where degradation was not
    /// possible.
    Budget {
        /// Paths expanded before giving up.
        expansions: usize,
    },
    /// The query was cancelled through a [`CancelToken`].
    Cancelled,
    /// The query panicked; its batch-mates were unaffected.
    Panicked(String),
    /// Any other query-evaluation error.
    Query(AllFpError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Storage { kind, message } => {
                write!(f, "storage fault ({kind:?}): {message}")
            }
            EngineError::Budget { expansions } => {
                write!(f, "expansion budget exhausted after {expansions} paths")
            }
            EngineError::Cancelled => write!(f, "query cancelled"),
            EngineError::Panicked(msg) => write!(f, "query panicked: {msg}"),
            EngineError::Query(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AllFpError> for EngineError {
    fn from(e: AllFpError) -> Self {
        match e {
            AllFpError::Network(roadnet::NetworkError::Storage { kind, message }) => {
                EngineError::Storage { kind, message }
            }
            AllFpError::BudgetExhausted { expansions } => EngineError::Budget { expansions },
            AllFpError::Cancelled => EngineError::Cancelled,
            AllFpError::Panicked(msg) => EngineError::Panicked(msg),
            other => EngineError::Query(other),
        }
    }
}
