//! Epoch-versioned live traffic updates (DESIGN.md §14).
//!
//! A live deployment receives [`TrafficDelta`] batches while queries
//! are in flight. The correctness contract is **pin-at-admission**:
//! every query is answered against exactly one *epoch* — one immutable
//! network version — chosen when the query is admitted, no matter how
//! many deltas are published before it actually runs. There are no
//! torn reads by construction, because nothing a query can reach is
//! ever mutated:
//!
//! * An [`Epoch`] owns an `Arc<RoadNetwork>` and an estimator; both
//!   are built before the epoch is published and never touched after.
//! * Applying a delta builds a **new** network via
//!   [`RoadNetwork::apply_delta`], whose pattern table is strictly
//!   append-only: pattern ids already observed by a pinned query keep
//!   their meaning forever. That single property is what lets all
//!   epochs share one [`TravelFnCache`] (keyed by pattern id) with no
//!   invalidation protocol on the hot path — a cached travel function
//!   is exact in every epoch that can look it up.
//! * Publishing is an atomic swap of the manager's current
//!   `Arc<Epoch>` under a short lock that queries only take at
//!   admission, never during search.
//!
//! Retirement is reference-counted: a query pins its epoch by holding
//! a clone of the `Arc` (the [`crate::service::QueryService`] stores
//! it in the ticket), and an old epoch is freed only when its last pin
//! drops. [`EpochManager::sweep`] then reclaims the *derived* state:
//! travel-function cache entries whose pattern id is no longer
//! referenced by any live epoch are flushed
//! ([`TravelFnCache::retire_patterns`]) — scoped invalidation, not a
//! cache wipe.
//!
//! Estimator reuse follows the invalidation cone of a delta:
//!
//! * `NaiveLb` is one scalar (`v_max`); rebuilt every epoch (free).
//! * `BoundaryLb` in [`WeightMode::Distance`] depends only on edge
//!   *lengths*, which deltas never change — the tables are reused
//!   verbatim, only the `v_max` divisor is refreshed
//!   ([`BoundaryLb::with_v_max`]).
//! * `BoundaryLb` in [`WeightMode::BestTime`] depends on per-edge
//!   best-case speeds; it is rebuilt only when the delta changed some
//!   edge's maximum speed ([`DeltaReport::best_time_weights_changed`])
//!   and reused verbatim otherwise.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, Weak};

use roadnet::{DeltaReport, RoadNetwork};
use traffic::TrafficDelta;

use crate::backend::PathfindBackend;
use crate::boundary::{BoundaryLb, WeightMode};
use crate::cache::{CacheCounters, CacheSession, TravelFnCache};
use crate::engine::{Engine, EngineConfig};
use crate::estimator::{EstimatorKind, LowerBoundEstimator, MaxEstimator, NaiveLb};
use crate::query::{AllFpAnswer, CancelToken, QueryOutcome, QuerySpec, SingleFpAnswer};
use crate::{AllFpError, EngineError, Result};

/// Lock with poison recovery (same rationale as the service lock: the
/// manager state is valid after any interrupted mutation).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Identifies one published network version. Ids are dense and
/// monotone: the seed epoch is 0 and every applied delta increments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EpochId(pub u64);

impl std::fmt::Display for EpochId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "epoch {}", self.0)
    }
}

/// One immutable network version: the network, its estimator, and the
/// delta report that produced it. Everything reachable from an epoch
/// is frozen at publish time; queries pin an epoch by holding its
/// `Arc` and can therefore never observe a torn update.
pub struct Epoch {
    id: EpochId,
    net: Arc<RoadNetwork>,
    estimator: Arc<dyn LowerBoundEstimator>,
    /// The report of the delta that produced this epoch (`None` for
    /// the seed epoch).
    produced_by: Option<DeltaReport>,
}

impl std::fmt::Debug for Epoch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Epoch")
            .field("id", &self.id)
            .field("estimator", &self.estimator.name())
            .field("produced_by", &self.produced_by)
            .finish()
    }
}

impl Epoch {
    /// This epoch's id.
    pub fn id(&self) -> EpochId {
        self.id
    }

    /// The frozen network version.
    pub fn network(&self) -> &Arc<RoadNetwork> {
        &self.net
    }

    /// The frozen estimator.
    pub fn estimator(&self) -> &Arc<dyn LowerBoundEstimator> {
        &self.estimator
    }

    /// The report of the delta that produced this epoch (`None` for
    /// the seed epoch).
    pub fn produced_by(&self) -> Option<&DeltaReport> {
        self.produced_by.as_ref()
    }
}

/// What one [`EpochManager::apply_delta`] did.
#[derive(Debug, Clone, PartialEq)]
pub struct ApplyReport {
    /// Id of the newly published epoch.
    pub epoch: EpochId,
    /// The network layer's apply report (edges changed, patterns
    /// interned, …).
    pub delta: DeltaReport,
    /// The estimator's expensive tables were reused verbatim (only
    /// `v_max` refreshed).
    pub estimator_reused: bool,
    /// Retirement work done by the sweep that ran after publishing.
    pub sweep: SweepReport,
}

/// What one [`EpochManager::sweep`] reclaimed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepReport {
    /// Epochs whose last pin had dropped; now counted retired.
    pub epochs_retired: u64,
    /// Travel-function cache entries flushed because their pattern id
    /// is referenced by no live epoch.
    pub cache_entries_flushed: u64,
    /// Published non-current epochs still alive (pinned) after the
    /// sweep — the retire lag.
    pub epoch_retire_lag: u64,
}

/// Live-update counters. Every snapshot satisfies
/// [`EpochStats::reconciles`]; the update-storm chaos harness asserts
/// it after every scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EpochStats {
    /// Epochs ever published (the seed epoch counts).
    pub epochs_published: u64,
    /// Deltas applied ([`EpochManager::apply_delta`] successes).
    pub updates_applied: u64,
    /// Old epochs whose last pin dropped and that a sweep has counted.
    pub epochs_retired: u64,
    /// Published non-current epochs still pinned at the snapshot.
    pub epoch_retire_lag: u64,
    /// Hierarchy shortcut arcs recomposed across all refreshes
    /// (reported by the hierarchy layer via
    /// [`EpochManager::record_shortcuts_rebuilt`]).
    pub shortcuts_rebuilt: u64,
    /// Travel-function cache entries flushed by retirement sweeps.
    pub cache_entries_flushed: u64,
}

impl EpochStats {
    /// The exact accounting identities every snapshot satisfies:
    /// `epochs_published = updates_applied + 1` (the seed epoch plus
    /// one per delta) and
    /// `epochs_retired + epoch_retire_lag = updates_applied` (every
    /// superseded epoch is either retired or still pinned).
    pub fn reconciles(&self) -> bool {
        self.epochs_published == self.updates_applied + 1
            && self.epochs_retired + self.epoch_retire_lag == self.updates_applied
    }
}

/// Manager state behind one short-lived lock (taken at admission and
/// publish time only — never during a search).
struct ManagerState {
    current: Arc<Epoch>,
    /// Every superseded epoch not yet counted retired, weakly held so
    /// the manager itself never keeps an epoch alive.
    history: Vec<(EpochId, Weak<Epoch>)>,
    /// The current boundary tables, kept concrete for verbatim reuse
    /// across deltas that leave them valid.
    boundary: Option<Arc<BoundaryLb>>,
}

/// Publishes immutable [`Epoch`]s and retires them when their last
/// pinned query drains. See the module docs for the full model.
pub struct EpochManager {
    config: EngineConfig,
    /// One cache shared by every epoch — exact across versions because
    /// pattern ids are append-only.
    cache: Arc<TravelFnCache>,
    state: Mutex<ManagerState>,
    epochs_published: AtomicU64,
    updates_applied: AtomicU64,
    epochs_retired: AtomicU64,
    shortcuts_rebuilt: AtomicU64,
    cache_entries_flushed: AtomicU64,
}

impl EpochManager {
    /// Publish the seed epoch (id 0) over `net`, building the
    /// configured estimator.
    pub fn new(net: RoadNetwork, config: EngineConfig) -> Result<EpochManager> {
        let net = Arc::new(net);
        let (estimator, boundary) = build_parts(&net, &config)?;
        let cache = Arc::new(if config.use_travel_cache {
            TravelFnCache::new()
        } else {
            TravelFnCache::disabled()
        });
        Ok(EpochManager {
            config,
            cache,
            state: Mutex::new(ManagerState {
                current: Arc::new(Epoch {
                    id: EpochId(0),
                    net,
                    estimator,
                    produced_by: None,
                }),
                history: Vec::new(),
                boundary,
            }),
            epochs_published: AtomicU64::new(1),
            updates_applied: AtomicU64::new(0),
            epochs_retired: AtomicU64::new(0),
            shortcuts_rebuilt: AtomicU64::new(0),
            cache_entries_flushed: AtomicU64::new(0),
        })
    }

    /// Pin the current epoch (clone its `Arc`): the caller's handle
    /// keeps the epoch alive until dropped.
    pub fn current(&self) -> Arc<Epoch> {
        Arc::clone(&lock(&self.state).current)
    }

    /// Id of the current epoch.
    pub fn current_id(&self) -> EpochId {
        lock(&self.state).current.id
    }

    /// Pin a specific epoch: `None` pins the current one; `Some(id)`
    /// resolves the current epoch or a still-alive superseded one.
    /// Returns `None` when the epoch has already been retired (its
    /// last pin dropped) — the caller must fail the query rather than
    /// silently answer against a different network version.
    pub fn pin(&self, id: Option<EpochId>) -> Option<Arc<Epoch>> {
        let st = lock(&self.state);
        match id {
            None => Some(Arc::clone(&st.current)),
            Some(id) if st.current.id == id => Some(Arc::clone(&st.current)),
            Some(id) => st
                .history
                .iter()
                .find(|(h, _)| *h == id)
                .and_then(|(_, w)| w.upgrade()),
        }
    }

    /// The shared travel-function cache.
    pub fn cache(&self) -> &Arc<TravelFnCache> {
        &self.cache
    }

    /// The engine configuration every epoch's queries run under.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Apply one delta: build the successor network (append-only
    /// pattern table), reuse or rebuild the estimator along the
    /// delta's invalidation cone, publish the new epoch atomically,
    /// and sweep retirements. Queries admitted before the publish keep
    /// their pinned epoch; queries admitted after see only the new one.
    pub fn apply_delta(&self, delta: &TrafficDelta) -> Result<ApplyReport> {
        let mut st = lock(&self.state);
        let old = Arc::clone(&st.current);
        let (new_net, report) = old.net.apply_delta(delta)?;
        let net = Arc::new(new_net);

        let naive = NaiveLb::new(net.max_speed());
        let (estimator, boundary, reused): (
            Arc<dyn LowerBoundEstimator>,
            Option<Arc<BoundaryLb>>,
            bool,
        ) = match (self.config.estimator, &st.boundary) {
            (EstimatorKind::Naive, _) => (Arc::new(naive), None, false),
            // Distance tables depend only on edge lengths: reuse
            // verbatim, refresh the v_max divisor.
            (EstimatorKind::Boundary { .. }, Some(bd)) => {
                let bd = Arc::new(bd.with_v_max(net.max_speed()));
                (
                    Arc::new(MaxEstimator::new(naive, Arc::clone(&bd), "bdLB")),
                    Some(bd),
                    true,
                )
            }
            // Partitioned distance tables likewise depend only on edge
            // lengths and node locations, neither of which a traffic
            // delta can change.
            (EstimatorKind::BoundaryPartitioned { .. }, Some(bd)) => {
                let bd = Arc::new(bd.with_v_max(net.max_speed()));
                (
                    Arc::new(MaxEstimator::new(naive, Arc::clone(&bd), "bdLB-part")),
                    Some(bd),
                    true,
                )
            }
            // BestTime tables depend on per-edge best-case speeds:
            // reuse only when the delta left every max speed intact.
            (EstimatorKind::BoundaryTime { .. }, Some(bd)) if !report.best_time_weights_changed => {
                let bd = Arc::new(bd.with_v_max(net.max_speed()));
                (
                    Arc::new(MaxEstimator::new(naive, Arc::clone(&bd), "bdLB-time")),
                    Some(bd),
                    true,
                )
            }
            _ => {
                let (estimator, boundary) = build_parts(&net, &self.config)?;
                (estimator, boundary, false)
            }
        };

        let id = EpochId(old.id.0 + 1);
        st.boundary = boundary;
        st.history.push((old.id, Arc::downgrade(&old)));
        st.current = Arc::new(Epoch {
            id,
            net,
            estimator,
            produced_by: Some(report.clone()),
        });
        self.epochs_published.fetch_add(1, Ordering::Relaxed);
        self.updates_applied.fetch_add(1, Ordering::Relaxed);
        // Drop the local pin before sweeping so an already-unpinned
        // predecessor retires in the same call.
        drop(old);
        let sweep = self.sweep_locked(&mut st);
        Ok(ApplyReport {
            epoch: id,
            delta: report,
            estimator_reused: reused,
            sweep,
        })
    }

    /// Retire epochs whose last pin has dropped and flush cache
    /// entries whose pattern id no live epoch references. Safe to call
    /// at any time; [`EpochManager::apply_delta`] and
    /// [`EpochManager::stats`] call it implicitly.
    pub fn sweep(&self) -> SweepReport {
        let mut st = lock(&self.state);
        self.sweep_locked(&mut st)
    }

    fn sweep_locked(&self, st: &mut ManagerState) -> SweepReport {
        let mut retired = 0u64;
        st.history.retain(|(_, w)| {
            if w.strong_count() == 0 {
                retired += 1;
                false
            } else {
                true
            }
        });
        let mut flushed = 0u64;
        if retired > 0 {
            // Union of pattern ids referenced by any live epoch; cache
            // entries outside it can never be looked up again.
            let mut referenced = st.current.net.referenced_patterns();
            for (_, w) in &st.history {
                if let Some(e) = w.upgrade() {
                    let r = e.net.referenced_patterns();
                    if r.len() > referenced.len() {
                        referenced.resize(r.len(), false);
                    }
                    for (i, live) in r.iter().enumerate() {
                        referenced[i] = referenced[i] || *live;
                    }
                }
            }
            flushed = self
                .cache
                .retire_patterns(|p| !referenced.get(p.0 as usize).copied().unwrap_or(false));
            self.epochs_retired.fetch_add(retired, Ordering::Relaxed);
            self.cache_entries_flushed
                .fetch_add(flushed, Ordering::Relaxed);
        }
        SweepReport {
            epochs_retired: retired,
            cache_entries_flushed: flushed,
            epoch_retire_lag: st.history.len() as u64,
        }
    }

    /// Record shortcut arcs recomposed by a hierarchy refresh (the
    /// hierarchy crate sits above this one, so it reports in).
    pub fn record_shortcuts_rebuilt(&self, rebuilt: u64) {
        self.shortcuts_rebuilt.fetch_add(rebuilt, Ordering::Relaxed);
    }

    /// Counter snapshot. Runs a sweep first so the snapshot's
    /// retire/lag split is exact ([`EpochStats::reconciles`]).
    pub fn stats(&self) -> EpochStats {
        let lag = self.sweep().epoch_retire_lag;
        EpochStats {
            epochs_published: self.epochs_published.load(Ordering::Relaxed),
            updates_applied: self.updates_applied.load(Ordering::Relaxed),
            epochs_retired: self.epochs_retired.load(Ordering::Relaxed),
            epoch_retire_lag: lag,
            shortcuts_rebuilt: self.shortcuts_rebuilt.load(Ordering::Relaxed),
            cache_entries_flushed: self.cache_entries_flushed.load(Ordering::Relaxed),
        }
    }
}

/// The estimator an epoch serves plus the concrete boundary tables it
/// wraps, kept alongside for verbatim reuse across deltas.
type EstimatorParts = (Arc<dyn LowerBoundEstimator>, Option<Arc<BoundaryLb>>);

/// Build the configured estimator over `net`, returning the concrete
/// boundary tables alongside (for later verbatim reuse).
fn build_parts(net: &RoadNetwork, config: &EngineConfig) -> Result<EstimatorParts> {
    let naive = NaiveLb::new(net.max_speed());
    Ok(match config.estimator {
        EstimatorKind::Naive => (Arc::new(naive), None),
        EstimatorKind::Boundary { grid } => {
            let bd = Arc::new(BoundaryLb::build(net, grid, WeightMode::Distance)?);
            (
                Arc::new(MaxEstimator::new(naive, Arc::clone(&bd), "bdLB")),
                Some(bd),
            )
        }
        EstimatorKind::BoundaryTime { grid } => {
            let bd = Arc::new(BoundaryLb::build(net, grid, WeightMode::BestTime)?);
            (
                Arc::new(MaxEstimator::new(naive, Arc::clone(&bd), "bdLB-time")),
                Some(bd),
            )
        }
        EstimatorKind::BoundaryPartitioned { groups } => {
            let bd = Arc::new(BoundaryLb::build_partitioned_auto(
                net,
                groups,
                WeightMode::Distance,
            )?);
            (
                Arc::new(MaxEstimator::new(naive, Arc::clone(&bd), "bdLB-part")),
                Some(bd),
            )
        }
    })
}

/// A [`PathfindBackend`] that answers every query against its pinned
/// epoch: the query's [`QuerySpec::epoch`] stamp (or the current epoch
/// when unstamped) selects the network version; a cheap flat
/// [`Engine`] is assembled over the epoch's frozen parts per query.
/// All epochs share the manager's travel-function cache.
pub struct LiveBackend<'m> {
    manager: &'m EpochManager,
}

impl<'m> LiveBackend<'m> {
    /// A backend over `manager`.
    pub fn new(manager: &'m EpochManager) -> Self {
        LiveBackend { manager }
    }

    /// The manager this backend answers from.
    pub fn manager(&self) -> &'m EpochManager {
        self.manager
    }

    fn resolve(&self, query: &QuerySpec) -> Result<Arc<Epoch>> {
        self.manager
            .pin(query.epoch)
            .ok_or(AllFpError::EpochRetired {
                epoch: query.epoch.map_or(0, |e| e.0),
            })
    }

    fn engine_for<'e>(&self, epoch: &'e Epoch) -> Engine<'e, RoadNetwork> {
        Engine::with_shared(
            epoch.net.as_ref(),
            Arc::clone(&epoch.estimator),
            Arc::clone(&self.manager.cache),
            self.manager.config.clone(),
        )
    }
}

impl<'m> PathfindBackend for LiveBackend<'m> {
    fn backend_name(&self) -> &'static str {
        "live"
    }

    fn cache_session(&self) -> CacheSession<'_> {
        self.manager.cache.session()
    }

    fn cache_counters(&self) -> CacheCounters {
        self.manager.cache.counters()
    }

    fn all_fastest_paths(&self, query: &QuerySpec) -> Result<AllFpAnswer> {
        let epoch = self.resolve(query)?;
        let out = self.engine_for(&epoch).all_fastest_paths(query);
        out
    }

    fn single_fastest_path(&self, query: &QuerySpec) -> Result<SingleFpAnswer> {
        let epoch = self.resolve(query)?;
        let out = self.engine_for(&epoch).single_fastest_path(query);
        out
    }

    fn robust_with_session(
        &self,
        query: &QuerySpec,
        session: &mut CacheSession<'_>,
        cancel: Option<&CancelToken>,
    ) -> std::result::Result<QueryOutcome, EngineError> {
        let epoch = self.resolve(query).map_err(EngineError::from)?;
        let out = self
            .engine_for(&epoch)
            .robust_with_session(query, session, cancel);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwl::Interval;
    use roadnet::generators::grid;
    use roadnet::NodeId;
    use traffic::{DayCategory, RoadClass};

    fn small_net() -> RoadNetwork {
        grid(5, 5, 0.3, RoadClass::LocalOutside).unwrap()
    }

    fn spec() -> QuerySpec {
        QuerySpec::new(
            NodeId(0),
            NodeId(24),
            Interval::new(420.0, 480.0).unwrap(),
            DayCategory::WORKDAY,
        )
    }

    #[test]
    fn pinned_queries_see_their_epoch_not_later_ones() {
        let mgr = EpochManager::new(small_net(), EngineConfig::default()).unwrap();
        let live = LiveBackend::new(&mgr);
        let before = live.single_fastest_path(&spec()).unwrap();
        let pinned = spec().with_epoch(mgr.current_id());
        let pin = mgr.current();

        // Halve every speed on a corridor of edges.
        let delta = mgr.current().network().seeded_delta(7, 6, 1).unwrap();
        let report = mgr.apply_delta(&delta).unwrap();
        assert_eq!(report.epoch, EpochId(1));
        assert!(report.delta.edges_changed > 0);

        // The pinned query still answers bit-identically to the old
        // epoch; an unpinned query sees the new one.
        let after_pinned = live.single_fastest_path(&pinned).unwrap();
        assert_eq!(
            before.travel_minutes.to_bits(),
            after_pinned.travel_minutes.to_bits()
        );
        assert_eq!(before.path.nodes, after_pinned.path.nodes);
        drop(pin);
        assert_eq!(mgr.current_id(), EpochId(1));
    }

    #[test]
    fn retired_epochs_reject_instead_of_misanswering() {
        let mgr = EpochManager::new(small_net(), EngineConfig::default()).unwrap();
        let live = LiveBackend::new(&mgr);
        let pinned = spec().with_epoch(EpochId(0));
        let delta = mgr.current().network().seeded_delta(3, 4, 1).unwrap();
        mgr.apply_delta(&delta).unwrap();
        // Nothing pinned epoch 0: it is retired, and a query pinned to
        // it must fail rather than silently run on epoch 1.
        let err = live.single_fastest_path(&pinned).unwrap_err();
        assert!(matches!(err, AllFpError::EpochRetired { epoch: 0 }));
    }

    #[test]
    fn counters_reconcile_through_apply_and_retire() {
        let mgr = EpochManager::new(small_net(), EngineConfig::default()).unwrap();
        let pin = mgr.current();
        for seq in 1..=3u64 {
            let delta = mgr.current().network().seeded_delta(seq, 3, seq).unwrap();
            mgr.apply_delta(&delta).unwrap();
        }
        let st = mgr.stats();
        assert!(st.reconciles(), "{st:?}");
        assert_eq!(st.epochs_published, 4);
        assert_eq!(st.updates_applied, 3);
        // Epoch 0 is still pinned; epochs 1 and 2 retired on the spot.
        assert_eq!(st.epoch_retire_lag, 1);
        assert_eq!(st.epochs_retired, 2);
        drop(pin);
        let st = mgr.stats();
        assert!(st.reconciles(), "{st:?}");
        assert_eq!(st.epochs_retired, 3);
        assert_eq!(st.epoch_retire_lag, 0);
    }

    #[test]
    fn estimator_reuse_matches_rebuild_bit_for_bit() {
        let config = EngineConfig {
            estimator: EstimatorKind::Boundary { grid: 3 },
            ..Default::default()
        };
        let mgr = EpochManager::new(small_net(), config).unwrap();
        let delta = mgr.current().network().seeded_delta(11, 5, 1).unwrap();
        let report = mgr.apply_delta(&delta).unwrap();
        assert!(report.estimator_reused);
        let st = lock(&mgr.state);
        let reused = st.boundary.as_ref().unwrap();
        let rebuilt = BoundaryLb::build(st.current.net.as_ref(), 3, WeightMode::Distance).unwrap();
        assert_eq!(**reused, rebuilt);
    }

    #[test]
    fn shared_cache_stays_exact_and_flushes_on_retire() {
        let mgr = EpochManager::new(small_net(), EngineConfig::default()).unwrap();
        let live = LiveBackend::new(&mgr);
        live.single_fastest_path(&spec()).unwrap();
        let seeded = mgr.cache().counters().inserted;
        assert!(seeded > 0);

        // Delta 1 replaces 8 edges' patterns with freshly interned
        // ones; a query then caches travel functions for them.
        let d1 = mgr.current().network().seeded_delta(5, 8, 1).unwrap();
        let r1 = mgr.apply_delta(&d1).unwrap();
        assert_eq!(r1.sweep.epochs_retired, 1);
        live.single_fastest_path(&spec()).unwrap();

        // Delta 2 (same seed → same edges) replaces them again, so
        // delta 1's patterns lose their last referencing edge; once
        // epoch 1 retires, their cache entries are flushed.
        let d2 = mgr.current().network().seeded_delta(5, 8, 2).unwrap();
        let r2 = mgr.apply_delta(&d2).unwrap();
        assert_eq!(r2.sweep.epochs_retired, 1);
        assert!(
            r2.sweep.cache_entries_flushed > 0,
            "delta-1 patterns should flush: {r2:?}"
        );
        let counters = mgr.cache().counters();
        assert!(counters.retired > 0);
        assert_eq!(
            counters.expected_resident(),
            counters.inserted - counters.retired
        );

        // Queries on the new epoch still share (and refill) the cache.
        live.single_fastest_path(&spec()).unwrap();
        assert!(mgr.cache().counters().inserted >= seeded);
    }
}
