//! Baselines the paper evaluates against (§3, §6.3).
//!
//! * [`astar_at`] — the classic fixed-leaving-instant A\* (§1: with a
//!   single leaving instant the fastest-path problem "degrades into
//!   the shortest-path problem" because each edge's travel time is
//!   fixed once the arrival time at its tail is known — correct under
//!   FIFO);
//! * [`discrete_time`] — the **Discrete Time model**: pose one
//!   fixed-instant query per time step across the query interval and
//!   keep the best (the approach the paper shows to be both inaccurate
//!   and slow, Figure 10);
//! * [`constant_speed_plan`] — the **commercial navigation** model:
//!   plan assuming every road moves at its speed limit at all times,
//!   then drive the resulting (possibly bad) route under real
//!   patterns;
//! * [`evaluate_path`] — drive a fixed route at a given leaving
//!   instant under the real CapeCod patterns.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

use roadnet::{NetworkSource, NodeId};
use traffic::{travel::travel_time_at, DayCategory};

use crate::estimator::LowerBoundEstimator;
use crate::{AllFpError, Result};

/// Min-heap item shared by the fixed-instant searches (`f` is the
/// A\*/Dijkstra priority; `total_cmp` orders even NaN deterministically
/// instead of panicking a batch worker).
#[derive(PartialEq)]
struct Item {
    f: f64,
    node: NodeId,
}
impl Eq for Item {}
impl Ord for Item {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .f
            .total_cmp(&self.f)
            .then_with(|| other.node.0.cmp(&self.node.0))
    }
}
impl PartialOrd for Item {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Result of a fixed-instant query.
#[derive(Debug, Clone, PartialEq)]
pub struct InstantAnswer {
    /// The fastest path for this leaving instant.
    pub nodes: Vec<NodeId>,
    /// Travel time, minutes.
    pub travel_minutes: f64,
    /// Nodes expanded (settled) by the search.
    pub expanded_nodes: usize,
}

/// Time-dependent A\* for a single leaving instant (the special case
/// that degrades to shortest-path search).
///
/// Settles nodes by earliest *arrival time*; the edge relaxation
/// evaluates the CapeCod travel time at the tail's arrival instant,
/// which is exact under FIFO. `heuristic` must be a lower bound on the
/// remaining travel time.
pub fn astar_at<S: NetworkSource>(
    source: &S,
    s: NodeId,
    e: NodeId,
    leave: f64,
    category: DayCategory,
    heuristic: &dyn LowerBoundEstimator,
) -> Result<InstantAnswer> {
    let target_loc = source.find_node(e)?;
    let mut arrival: HashMap<NodeId, f64> = HashMap::new();
    let mut parent: HashMap<NodeId, NodeId> = HashMap::new();
    let mut settled: HashMap<NodeId, bool> = HashMap::new();
    let mut heap = BinaryHeap::new();
    let mut expanded = 0usize;

    arrival.insert(s, leave);
    let s_loc = source.find_node(s)?;
    heap.push(Item {
        f: leave + heuristic.travel_lower_bound(s, s_loc, e, target_loc),
        node: s,
    });

    while let Some(Item { node: u, .. }) = heap.pop() {
        if settled.get(&u).copied().unwrap_or(false) {
            continue;
        }
        settled.insert(u, true);
        expanded += 1;
        let t_u = arrival[&u];
        if u == e {
            let mut nodes = vec![e];
            let mut cur = e;
            while let Some(&p) = parent.get(&cur) {
                nodes.push(p);
                cur = p;
            }
            nodes.reverse();
            return Ok(InstantAnswer {
                nodes,
                travel_minutes: t_u - leave,
                expanded_nodes: expanded,
            });
        }
        for edge in source.successors(u)? {
            if settled.get(&edge.to).copied().unwrap_or(false) {
                continue;
            }
            let profile = source.pattern(edge.pattern)?.profile(category)?;
            let t_edge = travel_time_at(profile, edge.distance, t_u)?;
            let t_v = t_u + t_edge;
            if t_v < arrival.get(&edge.to).copied().unwrap_or(f64::INFINITY) {
                arrival.insert(edge.to, t_v);
                parent.insert(edge.to, u);
                let v_loc = source.find_node(edge.to)?;
                let h = heuristic.travel_lower_bound(edge.to, v_loc, e, target_loc);
                heap.push(Item {
                    f: t_v + h,
                    node: edge.to,
                });
            }
        }
    }
    Err(AllFpError::Unreachable {
        source: s,
        target: e,
    })
}

/// Result of a discrete-time interval query.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteAnswer {
    /// Best leaving instant among the probed steps.
    pub best_leave: f64,
    /// The fastest path found at that instant.
    pub nodes: Vec<NodeId>,
    /// Its travel time, minutes.
    pub travel_minutes: f64,
    /// Number of fixed-instant queries posed.
    pub queries: usize,
    /// Total nodes expanded across all queries.
    pub expanded_nodes: usize,
}

/// The Discrete Time model: probe leaving instants
/// `lo, lo+step, …, ≤ hi` with [`astar_at`] and keep the best.
pub fn discrete_time<S: NetworkSource>(
    source: &S,
    s: NodeId,
    e: NodeId,
    interval: &pwl::Interval,
    step_minutes: f64,
    category: DayCategory,
    heuristic: &dyn LowerBoundEstimator,
) -> Result<DiscreteAnswer> {
    assert!(step_minutes > 0.0, "step must be positive");
    let mut best: Option<DiscreteAnswer> = None;
    let mut queries = 0usize;
    let mut expanded = 0usize;
    let mut l = interval.lo();
    while l <= interval.hi() + 1e-9 {
        let ans = astar_at(source, s, e, l, category, heuristic)?;
        queries += 1;
        expanded += ans.expanded_nodes;
        let better = best
            .as_ref()
            .is_none_or(|b| ans.travel_minutes < b.travel_minutes);
        if better {
            best = Some(DiscreteAnswer {
                best_leave: l,
                nodes: ans.nodes,
                travel_minutes: ans.travel_minutes,
                queries: 0,
                expanded_nodes: 0,
            });
        }
        l += step_minutes;
    }
    // `Interval` guarantees lo ≤ hi, so the loop always probes ≥ once.
    let mut best = best.ok_or(AllFpError::Internal("discrete-time loop ran zero probes"))?;
    best.queries = queries;
    best.expanded_nodes = expanded;
    Ok(best)
}

/// Drive the fixed route `nodes` leaving at `leave`, under the real
/// patterns; returns total travel minutes.
pub fn evaluate_path<S: NetworkSource>(
    source: &S,
    nodes: &[NodeId],
    leave: f64,
    category: DayCategory,
) -> Result<f64> {
    let mut t = leave;
    for w in nodes.windows(2) {
        let edges = source.successors(w[0])?;
        let edge = edges
            .iter()
            .find(|e| e.to == w[1])
            .ok_or(AllFpError::Unreachable {
                source: w[0],
                target: w[1],
            })?;
        let profile = source.pattern(edge.pattern)?.profile(category)?;
        t += travel_time_at(profile, edge.distance, t)?;
    }
    Ok(t - leave)
}

/// The commercial-navigation baseline: plan with constant speed-limit
/// weights (time-independent Dijkstra/A\*), then drive the planned
/// route under the real CapeCod patterns.
///
/// Returns `(planned_route, real_travel_minutes)`.
pub fn constant_speed_plan<S: NetworkSource>(
    source: &S,
    s: NodeId,
    e: NodeId,
    leave: f64,
    category: DayCategory,
) -> Result<(Vec<NodeId>, f64)> {
    let mut cost: HashMap<NodeId, f64> = HashMap::new();
    let mut parent: HashMap<NodeId, NodeId> = HashMap::new();
    let mut settled: HashMap<NodeId, bool> = HashMap::new();
    let mut heap = BinaryHeap::new();
    cost.insert(s, 0.0);
    heap.push(Item { f: 0.0, node: s });

    while let Some(Item { node: u, .. }) = heap.pop() {
        if settled.get(&u).copied().unwrap_or(false) {
            continue;
        }
        settled.insert(u, true);
        if u == e {
            let mut nodes = vec![e];
            let mut cur = e;
            while let Some(&p) = parent.get(&cur) {
                nodes.push(p);
                cur = p;
            }
            nodes.reverse();
            let real = evaluate_path(source, &nodes, leave, category)?;
            return Ok((nodes, real));
        }
        let c_u = cost[&u];
        for edge in source.successors(u)? {
            if settled.get(&edge.to).copied().unwrap_or(false) {
                continue;
            }
            // speed-limit minutes: miles / (mph / 60)
            let w = edge.distance / pwl::time::mph_to_mpm(edge.class.speed_limit_mph());
            let c_v = c_u + w;
            if c_v < cost.get(&edge.to).copied().unwrap_or(f64::INFINITY) {
                cost.insert(edge.to, c_v);
                parent.insert(edge.to, u);
                heap.push(Item {
                    f: c_v,
                    node: edge.to,
                });
            }
        }
    }
    Err(AllFpError::Unreachable {
        source: s,
        target: e,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{NaiveLb, ZeroLb};
    use pwl::time::hm;
    use pwl::Interval;
    use roadnet::examples::paper_running_example;

    #[test]
    fn astar_picks_direct_before_rush_clears() {
        let (net, ids) = paper_running_example();
        // Leaving 6:50: via-n takes 9 min, direct takes 6 → direct wins.
        let ans = astar_at(
            &net,
            ids.s,
            ids.e,
            hm(6, 50),
            DayCategory::WORKDAY,
            &NaiveLb::new(net.max_speed()),
        )
        .unwrap();
        assert_eq!(ans.nodes, vec![ids.s, ids.e]);
        assert!((ans.travel_minutes - 6.0).abs() < 1e-9);
    }

    #[test]
    fn astar_picks_via_n_after_rush() {
        let (net, ids) = paper_running_example();
        // Leaving 7:00: via-n takes 5 min (2 + 3) → beats the 6-min direct.
        let ans = astar_at(
            &net,
            ids.s,
            ids.e,
            hm(7, 0),
            DayCategory::WORKDAY,
            &NaiveLb::new(net.max_speed()),
        )
        .unwrap();
        assert_eq!(ans.nodes, vec![ids.s, ids.n, ids.e]);
        assert!((ans.travel_minutes - 5.0).abs() < 1e-9);
    }

    #[test]
    fn astar_unreachable_errors() {
        let (net, ids) = paper_running_example();
        // e has no outgoing edges: e -> s is unreachable.
        assert!(matches!(
            astar_at(&net, ids.e, ids.s, hm(7, 0), DayCategory::WORKDAY, &ZeroLb),
            Err(AllFpError::Unreachable { .. })
        ));
    }

    #[test]
    fn astar_source_equals_target() {
        let (net, ids) = paper_running_example();
        let ans = astar_at(&net, ids.s, ids.s, hm(7, 0), DayCategory::WORKDAY, &ZeroLb).unwrap();
        assert_eq!(ans.nodes, vec![ids.s]);
        assert_eq!(ans.travel_minutes, 0.0);
    }

    #[test]
    fn heuristic_reduces_expansions() {
        // Corner to center: the quadrant past the target is where the
        // heuristic prunes (corner-to-corner would leave nothing to
        // prune — every node is "on the way").
        let net =
            roadnet::generators::grid(15, 15, 0.3, traffic::RoadClass::InboundHighway).unwrap();
        let (s, e) = (NodeId(0), NodeId(7 * 15 + 7));
        let with_h = astar_at(
            &net,
            s,
            e,
            hm(12, 0),
            DayCategory::WORKDAY,
            &NaiveLb::new(net.max_speed()),
        )
        .unwrap();
        let without = astar_at(&net, s, e, hm(12, 0), DayCategory::WORKDAY, &ZeroLb).unwrap();
        assert!((with_h.travel_minutes - without.travel_minutes).abs() < 1e-9);
        assert!(
            with_h.expanded_nodes < without.expanded_nodes,
            "A* ({}) should expand fewer than Dijkstra ({})",
            with_h.expanded_nodes,
            without.expanded_nodes
        );
    }

    #[test]
    fn discrete_time_converges_with_finer_steps() {
        let (net, ids) = paper_running_example();
        let i = Interval::of(hm(6, 50), hm(7, 5));
        let lb = NaiveLb::new(net.max_speed());
        // coarse: only probes 6:50 → finds the 6-min direct path
        let coarse =
            discrete_time(&net, ids.s, ids.e, &i, 60.0, DayCategory::WORKDAY, &lb).unwrap();
        assert_eq!(coarse.queries, 1);
        assert!((coarse.travel_minutes - 6.0).abs() < 1e-9);
        // fine: probes every minute → finds the 5-min via-n window
        let fine = discrete_time(&net, ids.s, ids.e, &i, 1.0, DayCategory::WORKDAY, &lb).unwrap();
        assert_eq!(fine.queries, 16);
        assert!((fine.travel_minutes - 5.0).abs() < 1e-9);
        assert!(fine.best_leave >= hm(7, 0) - 1e-9);
        assert!(fine.expanded_nodes > coarse.expanded_nodes);
    }

    #[test]
    fn evaluate_path_matches_astar() {
        let (net, ids) = paper_running_example();
        let t =
            evaluate_path(&net, &[ids.s, ids.n, ids.e], hm(7, 0), DayCategory::WORKDAY).unwrap();
        assert!((t - 5.0).abs() < 1e-9);
        // unknown edge errors
        assert!(evaluate_path(&net, &[ids.e, ids.s], hm(7, 0), DayCategory::WORKDAY).is_err());
    }

    #[test]
    fn constant_speed_plan_ignores_congestion() {
        let (net, ids) = paper_running_example();
        // With per-class speed limits all three edges look constant
        // (class LocalOutside, 40 MPH): the planner picks the shorter
        // 5-mile via-n route; driven at 6:50 in real traffic it costs
        // 6 + 3 = 9 minutes vs the 6-minute direct road.
        let (nodes, real) =
            constant_speed_plan(&net, ids.s, ids.e, hm(6, 50), DayCategory::WORKDAY).unwrap();
        assert_eq!(nodes, vec![ids.s, ids.n, ids.e]);
        assert!((real - 9.0).abs() < 1e-9);
    }
}
