//! Query specifications, answers, and search statistics.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pwl::{Envelope, Interval, Pwl};
use roadnet::NodeId;
use traffic::DayCategory;

/// A time-interval fastest-path query: source, end node, leaving-time
/// interval, and the day category the trip happens on.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// The source node `s`.
    pub source: NodeId,
    /// The end node `e`.
    pub target: NodeId,
    /// The leaving-time interval `I` (minutes since midnight).
    pub interval: Interval,
    /// The day category (e.g. workday).
    pub category: DayCategory,
    /// Optional per-query budget. `None` leaves only the engine-level
    /// safety valve ([`EngineConfig::max_expansions`]) in force.
    ///
    /// [`EngineConfig::max_expansions`]: crate::EngineConfig::max_expansions
    pub budget: Option<QueryBudget>,
    /// The network epoch this query is pinned to (live-update
    /// deployments only — see [`crate::epoch`]). `None` means "the
    /// current epoch"; the [`crate::service::QueryService`] stamps
    /// the current epoch id here at admission, so an answer computed
    /// later (after more deltas were published) is still computed
    /// against exactly the network version the caller submitted under.
    pub epoch: Option<crate::epoch::EpochId>,
}

impl QuerySpec {
    /// Convenience constructor (no per-query budget).
    pub fn new(source: NodeId, target: NodeId, interval: Interval, category: DayCategory) -> Self {
        QuerySpec {
            source,
            target,
            interval,
            category,
            budget: None,
            epoch: None,
        }
    }

    /// This query with a per-query budget attached.
    pub fn with_budget(mut self, budget: QueryBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// This query pinned to a specific network epoch.
    pub fn with_epoch(mut self, epoch: crate::epoch::EpochId) -> Self {
        self.epoch = Some(epoch);
        self
    }
}

/// A per-query resource budget.
///
/// When either limit trips mid-search, [`Engine::run_robust`] returns
/// a [`QueryOutcome::Degraded`] answer (best paths found so far plus a
/// constant-speed fallback route) instead of an error; the legacy
/// `Result<AllFpAnswer>` entry points map the same event to
/// [`AllFpError::BudgetExhausted`].
///
/// [`Engine::run_robust`]: crate::Engine::run_robust
/// [`AllFpError::BudgetExhausted`]: crate::AllFpError::BudgetExhausted
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryBudget {
    /// Wall-clock deadline measured from the start of the search.
    pub max_wall: Option<Duration>,
    /// Maximum path expansions (combined with the engine-level valve
    /// by `min`).
    pub max_expansions: Option<usize>,
}

impl QueryBudget {
    /// An unlimited budget (both limits off).
    pub fn unlimited() -> Self {
        QueryBudget::default()
    }

    /// This budget with a wall-clock deadline.
    pub fn with_deadline(mut self, max_wall: Duration) -> Self {
        self.max_wall = Some(max_wall);
        self
    }

    /// This budget with an expansion cap.
    pub fn with_max_expansions(mut self, max_expansions: usize) -> Self {
        self.max_expansions = Some(max_expansions);
        self
    }
}

/// A cooperative cancellation flag shared between a batch caller and
/// the engine's workers.
///
/// Cloning shares the flag. The engine polls it between path pops, so
/// cancellation takes effect within a bounded number of expansions —
/// it never interrupts a composition mid-flight.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Request cancellation: every search polling this token stops at
    /// its next check and reports [`EngineError::Cancelled`].
    ///
    /// [`EngineError::Cancelled`]: crate::EngineError::Cancelled
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Why a query degraded instead of completing exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedReason {
    /// The [`QueryBudget::max_wall`] deadline expired.
    DeadlineExpired,
    /// The expansion cap (per-query or engine-level) was reached.
    ExpansionsExhausted,
    /// The storage layer was unhealthy (the service's circuit breaker
    /// was open, or the query itself hit a storage fault) and the
    /// answer was served from the constant-speed fallback instead of
    /// the exact search. Produced only by the [`crate::service`]
    /// layer, never by the engine itself.
    StorageUnavailable,
}

/// The answer a budget-limited query returns when its budget runs out:
/// everything exact the search had already proven, plus an always-valid
/// fallback route.
///
/// `best` carries the *exact* partitioning over every complete
/// source-to-target path the search had discovered when the budget
/// tripped — popped from the queue **or still queued** (queued target
/// paths are salvaged with cheap envelope merges, no further search
/// work). Each path's travel-time function is exact; the partitioning
/// is an **upper bound** on the true lower border, since an unexplored
/// path might still have beaten it somewhere. `None` if no complete
/// path had been discovered yet. `fallback` is the
/// commercial-navigation (constant speed-limit) route with its exact
/// travel-time function over the query interval — always a drivable
/// plan, never optimal by construction.
#[derive(Debug, Clone)]
pub struct DegradedAnswer {
    /// What tripped.
    pub reason: DegradedReason,
    /// Best-so-far exact answer over the paths that had reached the
    /// target (an upper bound on the true lower border).
    pub best: Option<AllFpAnswer>,
    /// The constant-speed fallback route with its exact travel-time
    /// function under the real speed patterns.
    pub fallback: FastestPath,
    /// Minimum of the fallback's travel-time function, minutes.
    pub fallback_travel_minutes: f64,
    /// Search statistics up to the point the budget tripped.
    pub stats: QueryStats,
}

/// Outcome of a budget-aware query: exact, or degraded-but-usable.
#[derive(Debug, Clone)]
pub enum QueryOutcome {
    /// The search terminated by the paper's rule: the full exact
    /// partitioning.
    Exact(AllFpAnswer),
    /// The budget tripped first: best-so-far plus a fallback route.
    Degraded(DegradedAnswer),
}

impl QueryOutcome {
    /// Did the search complete exactly?
    pub fn is_exact(&self) -> bool {
        matches!(self, QueryOutcome::Exact(_))
    }

    /// The exact answer, if this outcome is one.
    pub fn exact(&self) -> Option<&AllFpAnswer> {
        match self {
            QueryOutcome::Exact(a) => Some(a),
            QueryOutcome::Degraded(_) => None,
        }
    }

    /// The search statistics, whichever way the query ended.
    pub fn stats(&self) -> &QueryStats {
        match self {
            QueryOutcome::Exact(a) => &a.stats,
            QueryOutcome::Degraded(d) => &d.stats,
        }
    }
}

/// One concrete path with its exact travel-time function over (a
/// sub-interval of) the query interval.
#[derive(Debug, Clone, PartialEq)]
pub struct FastestPath {
    /// The node sequence, starting at the source and ending at the
    /// target.
    pub nodes: Vec<NodeId>,
    /// The travel-time function `T(l)` of this path over the query
    /// interval (minutes of travel as a function of leaving minute).
    ///
    /// Shared storage: the same immutable function is typically also
    /// referenced by the answer's lower border (and, for singleFP, the
    /// single answer), so cloning a `FastestPath` bumps a refcount
    /// instead of deep-copying the piece tables.
    pub travel: Arc<Pwl>,
}

impl FastestPath {
    /// Number of edges on the path.
    pub fn n_edges(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }
}

/// Search-effort counters (the paper reports *expanded nodes* as its
/// machine-independent cost metric, §6.2).
///
/// # Thread-safety contract
///
/// `QueryStats` is plain data, not atomics: each query accumulates its
/// own instance on the thread that runs it, and the values only cross
/// threads inside a returned answer — `std::thread::scope`'s join edge
/// makes them visible to the reader without any ordering subtleties.
/// Engine-wide counters that *are* shared across live threads (the
/// travel-function cache, the buffer pool) use relaxed atomics and
/// document their own read contract.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Paths popped from the priority queue and expanded.
    pub expanded_paths: usize,
    /// Distinct nodes that appeared at the head of an expanded path.
    pub expanded_nodes: usize,
    /// Paths pushed into the priority queue.
    pub pushed: usize,
    /// Candidate paths discarded by the lower-border bound.
    pub pruned_by_border: usize,
    /// Candidate paths discarded by per-node dominance (only when the
    /// optional pruning extension is enabled).
    pub pruned_dominated: usize,
    /// Paths that reached the target and were merged into the lower
    /// border.
    pub border_merges: usize,
    /// Edge travel-function requests during this query.
    pub cache_lookups: usize,
    /// Requests served from the engine's travel-function cache.
    pub cache_hits: usize,
    /// Requests that computed the function from the speed profile
    /// (always equal to `cache_lookups` when the cache is disabled).
    pub cache_misses: usize,
    /// Pieces across every composed travel function this query built
    /// (one compose per surviving candidate edge expansion).
    pub pieces_total: u64,
    /// Pieces of the largest single composed travel function.
    pub pieces_max: u64,
    /// Payload bytes of the composed travel functions: `8` per
    /// breakpoint plus `16` per linear piece. A deterministic proxy for
    /// the allocation pressure the composition work *would* exert
    /// without buffer pooling — actual allocator traffic in the steady
    /// state is near zero (measured by the bench's counting allocator),
    /// precisely because these bytes land in recycled buffers.
    pub bytes_allocated: u64,
    /// Edge compositions skipped by prefix memoization when an answer
    /// assembles several candidate routes sharing corridors (the
    /// hierarchy backend's allFP re-composition). Zero on the flat
    /// search path, which never recomputes a route it already built.
    pub compositions_saved: u64,
}

/// Roll-up statistics for one [`Engine::run_batch`] invocation:
/// how the work spread over workers, how often the work-stealing
/// scheduler had to rebalance, and the aggregate travel-function cache
/// behaviour across every successful query in the batch.
///
/// [`Engine::run_batch`]: crate::Engine::run_batch
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Worker threads the batch actually ran on.
    pub workers: usize,
    /// Queries processed by each worker (sums to the batch size).
    pub queries_per_worker: Vec<usize>,
    /// Successful steal operations (each moves half a victim's queue).
    pub steals: u64,
    /// Travel-function cache lookups summed over successful queries.
    pub cache_lookups: usize,
    /// Cache hits summed over successful queries.
    pub cache_hits: usize,
    /// Cache misses summed over successful queries.
    pub cache_misses: usize,
}

impl BatchStats {
    /// An empty roll-up for a batch run on `workers` threads.
    pub fn new(workers: usize) -> Self {
        BatchStats {
            workers,
            queries_per_worker: vec![0; workers],
            ..BatchStats::default()
        }
    }

    /// Tally one finished query for `worker`; `stats` is `None` for
    /// queries that failed without producing statistics.
    pub(crate) fn record(&mut self, worker: usize, stats: Option<&QueryStats>) {
        self.queries_per_worker[worker] += 1;
        if let Some(s) = stats {
            self.cache_lookups += s.cache_lookups;
            self.cache_hits += s.cache_hits;
            self.cache_misses += s.cache_misses;
        }
    }

    /// Queries processed across all workers.
    pub fn total_queries(&self) -> usize {
        self.queries_per_worker.iter().sum()
    }

    /// Aggregate cache hit rate in `[0, 1]` (0 when no lookups —
    /// errors carry no stats, so failed queries are excluded).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.cache_lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.cache_lookups as f64
        }
    }
}

/// Answer to a singleFP query.
#[derive(Debug, Clone, PartialEq)]
pub struct SingleFpAnswer {
    /// The fastest path.
    pub path: FastestPath,
    /// The minimal travel time, minutes.
    pub travel_minutes: f64,
    /// The (first maximal) interval of optimal leaving instants.
    pub best_leaving: Interval,
    /// Search statistics.
    pub stats: QueryStats,
}

/// Answer to an allFP query: the partitioning of the query interval
/// plus the distinct fastest paths it references.
#[derive(Debug, Clone)]
pub struct AllFpAnswer {
    /// The distinct fastest paths discovered, indexed by the partition.
    pub paths: Vec<FastestPath>,
    /// The partitioning of `I`: consecutive sub-intervals, each with an
    /// index into [`AllFpAnswer::paths`]; adjacent entries reference
    /// different paths.
    pub partition: Vec<(Interval, usize)>,
    /// The lower-border function (travel time of the best path at every
    /// leaving instant), tagged with path indices.
    pub lower_border: Envelope<usize>,
    /// Search statistics.
    pub stats: QueryStats,
}

impl AllFpAnswer {
    /// The fastest path for leaving instant `l`.
    pub fn path_at(&self, l: f64) -> Option<&FastestPath> {
        let (_, idx) = self
            .partition
            .iter()
            .find(|(iv, _)| iv.contains_approx(l))?;
        self.paths.get(*idx)
    }

    /// Travel time when leaving at `l` (on the best path).
    pub fn travel_at(&self, l: f64) -> Option<f64> {
        self.lower_border.as_pwl().try_eval(l)
    }

    /// Render the partitioning like the paper's §4.6 result listing.
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (iv, idx) in &self.partition {
            let path = &self.paths[*idx];
            let names: Vec<String> = path.nodes.iter().map(|n| n.to_string()).collect();
            let _ = writeln!(
                out,
                "[{} - {}]  {}",
                pwl::time::fmt_minutes(iv.lo()),
                pwl::time::fmt_minutes(iv.hi()),
                names.join(" -> ")
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwl::Linear;

    fn dummy_answer() -> AllFpAnswer {
        let i1 = Interval::of(0.0, 5.0);
        let i2 = Interval::of(5.0, 10.0);
        let p0 = FastestPath {
            nodes: vec![NodeId(0), NodeId(2)],
            travel: Arc::new(Pwl::constant(Interval::of(0.0, 10.0), 6.0).unwrap()),
        };
        let p1 = FastestPath {
            nodes: vec![NodeId(0), NodeId(1), NodeId(2)],
            travel: Arc::new(Pwl::constant(Interval::of(0.0, 10.0), 5.0).unwrap()),
        };
        let mut env = Envelope::new(
            Pwl::linear(Interval::of(0.0, 10.0), Linear { a: 0.2, b: 4.0 }).unwrap(),
            0usize,
        );
        env.merge_min(&Pwl::constant(Interval::of(0.0, 10.0), 5.0).unwrap(), 1)
            .unwrap();
        AllFpAnswer {
            paths: vec![p0, p1],
            partition: vec![(i1, 0), (i2, 1)],
            lower_border: env,
            stats: QueryStats::default(),
        }
    }

    #[test]
    fn path_lookup_by_instant() {
        let a = dummy_answer();
        assert_eq!(a.path_at(2.0).unwrap().nodes.len(), 2);
        assert_eq!(a.path_at(7.0).unwrap().nodes.len(), 3);
        assert!(a.path_at(11.0).is_none());
        assert!((a.travel_at(0.0).unwrap() - 4.0).abs() < 1e-9);
        assert!((a.travel_at(9.0).unwrap() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn describe_lists_partitions() {
        let text = dummy_answer().describe();
        assert!(text.contains("n0 -> n2"));
        assert!(text.contains("n0 -> n1 -> n2"));
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn fastest_path_edge_count() {
        let p = FastestPath {
            nodes: vec![NodeId(0)],
            travel: Arc::new(Pwl::constant(Interval::of(0.0, 1.0), 0.0).unwrap()),
        };
        assert_eq!(p.n_edges(), 0);
    }
}
