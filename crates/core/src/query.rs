//! Query specifications, answers, and search statistics.

use pwl::{Envelope, Interval, Pwl};
use roadnet::NodeId;
use traffic::DayCategory;

/// A time-interval fastest-path query: source, end node, leaving-time
/// interval, and the day category the trip happens on.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// The source node `s`.
    pub source: NodeId,
    /// The end node `e`.
    pub target: NodeId,
    /// The leaving-time interval `I` (minutes since midnight).
    pub interval: Interval,
    /// The day category (e.g. workday).
    pub category: DayCategory,
}

impl QuerySpec {
    /// Convenience constructor.
    pub fn new(source: NodeId, target: NodeId, interval: Interval, category: DayCategory) -> Self {
        QuerySpec {
            source,
            target,
            interval,
            category,
        }
    }
}

/// One concrete path with its exact travel-time function over (a
/// sub-interval of) the query interval.
#[derive(Debug, Clone, PartialEq)]
pub struct FastestPath {
    /// The node sequence, starting at the source and ending at the
    /// target.
    pub nodes: Vec<NodeId>,
    /// The travel-time function `T(l)` of this path over the query
    /// interval (minutes of travel as a function of leaving minute).
    pub travel: Pwl,
}

impl FastestPath {
    /// Number of edges on the path.
    pub fn n_edges(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }
}

/// Search-effort counters (the paper reports *expanded nodes* as its
/// machine-independent cost metric, §6.2).
///
/// # Thread-safety contract
///
/// `QueryStats` is plain data, not atomics: each query accumulates its
/// own instance on the thread that runs it, and the values only cross
/// threads inside a returned answer — `std::thread::scope`'s join edge
/// makes them visible to the reader without any ordering subtleties.
/// Engine-wide counters that *are* shared across live threads (the
/// travel-function cache, the buffer pool) use relaxed atomics and
/// document their own read contract.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Paths popped from the priority queue and expanded.
    pub expanded_paths: usize,
    /// Distinct nodes that appeared at the head of an expanded path.
    pub expanded_nodes: usize,
    /// Paths pushed into the priority queue.
    pub pushed: usize,
    /// Candidate paths discarded by the lower-border bound.
    pub pruned_by_border: usize,
    /// Candidate paths discarded by per-node dominance (only when the
    /// optional pruning extension is enabled).
    pub pruned_dominated: usize,
    /// Paths that reached the target and were merged into the lower
    /// border.
    pub border_merges: usize,
    /// Edge travel-function requests during this query.
    pub cache_lookups: usize,
    /// Requests served from the engine's travel-function cache.
    pub cache_hits: usize,
    /// Requests that computed the function from the speed profile
    /// (always equal to `cache_lookups` when the cache is disabled).
    pub cache_misses: usize,
}

/// Roll-up statistics for one [`Engine::run_batch`] invocation:
/// how the work spread over workers, how often the work-stealing
/// scheduler had to rebalance, and the aggregate travel-function cache
/// behaviour across every successful query in the batch.
///
/// [`Engine::run_batch`]: crate::Engine::run_batch
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Worker threads the batch actually ran on.
    pub workers: usize,
    /// Queries processed by each worker (sums to the batch size).
    pub queries_per_worker: Vec<usize>,
    /// Successful steal operations (each moves half a victim's queue).
    pub steals: u64,
    /// Travel-function cache lookups summed over successful queries.
    pub cache_lookups: usize,
    /// Cache hits summed over successful queries.
    pub cache_hits: usize,
    /// Cache misses summed over successful queries.
    pub cache_misses: usize,
}

impl BatchStats {
    /// An empty roll-up for a batch run on `workers` threads.
    pub fn new(workers: usize) -> Self {
        BatchStats {
            workers,
            queries_per_worker: vec![0; workers],
            ..BatchStats::default()
        }
    }

    /// Tally one finished query for `worker`.
    pub(crate) fn record(&mut self, worker: usize, r: &crate::Result<AllFpAnswer>) {
        self.queries_per_worker[worker] += 1;
        if let Ok(a) = r {
            self.cache_lookups += a.stats.cache_lookups;
            self.cache_hits += a.stats.cache_hits;
            self.cache_misses += a.stats.cache_misses;
        }
    }

    /// Queries processed across all workers.
    pub fn total_queries(&self) -> usize {
        self.queries_per_worker.iter().sum()
    }

    /// Aggregate cache hit rate in `[0, 1]` (0 when no lookups —
    /// errors carry no stats, so failed queries are excluded).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.cache_lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.cache_lookups as f64
        }
    }
}

/// Answer to a singleFP query.
#[derive(Debug, Clone, PartialEq)]
pub struct SingleFpAnswer {
    /// The fastest path.
    pub path: FastestPath,
    /// The minimal travel time, minutes.
    pub travel_minutes: f64,
    /// The (first maximal) interval of optimal leaving instants.
    pub best_leaving: Interval,
    /// Search statistics.
    pub stats: QueryStats,
}

/// Answer to an allFP query: the partitioning of the query interval
/// plus the distinct fastest paths it references.
#[derive(Debug, Clone)]
pub struct AllFpAnswer {
    /// The distinct fastest paths discovered, indexed by the partition.
    pub paths: Vec<FastestPath>,
    /// The partitioning of `I`: consecutive sub-intervals, each with an
    /// index into [`AllFpAnswer::paths`]; adjacent entries reference
    /// different paths.
    pub partition: Vec<(Interval, usize)>,
    /// The lower-border function (travel time of the best path at every
    /// leaving instant), tagged with path indices.
    pub lower_border: Envelope<usize>,
    /// Search statistics.
    pub stats: QueryStats,
}

impl AllFpAnswer {
    /// The fastest path for leaving instant `l`.
    pub fn path_at(&self, l: f64) -> Option<&FastestPath> {
        let (_, idx) = self
            .partition
            .iter()
            .find(|(iv, _)| iv.contains_approx(l))?;
        self.paths.get(*idx)
    }

    /// Travel time when leaving at `l` (on the best path).
    pub fn travel_at(&self, l: f64) -> Option<f64> {
        self.lower_border.as_pwl().try_eval(l)
    }

    /// Render the partitioning like the paper's §4.6 result listing.
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (iv, idx) in &self.partition {
            let path = &self.paths[*idx];
            let names: Vec<String> = path.nodes.iter().map(|n| n.to_string()).collect();
            let _ = writeln!(
                out,
                "[{} - {}]  {}",
                pwl::time::fmt_minutes(iv.lo()),
                pwl::time::fmt_minutes(iv.hi()),
                names.join(" -> ")
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwl::Linear;

    fn dummy_answer() -> AllFpAnswer {
        let i1 = Interval::of(0.0, 5.0);
        let i2 = Interval::of(5.0, 10.0);
        let p0 = FastestPath {
            nodes: vec![NodeId(0), NodeId(2)],
            travel: Pwl::constant(Interval::of(0.0, 10.0), 6.0).unwrap(),
        };
        let p1 = FastestPath {
            nodes: vec![NodeId(0), NodeId(1), NodeId(2)],
            travel: Pwl::constant(Interval::of(0.0, 10.0), 5.0).unwrap(),
        };
        let mut env = Envelope::new(
            Pwl::linear(Interval::of(0.0, 10.0), Linear { a: 0.2, b: 4.0 }).unwrap(),
            0usize,
        );
        env.merge_min(&Pwl::constant(Interval::of(0.0, 10.0), 5.0).unwrap(), 1)
            .unwrap();
        AllFpAnswer {
            paths: vec![p0, p1],
            partition: vec![(i1, 0), (i2, 1)],
            lower_border: env,
            stats: QueryStats::default(),
        }
    }

    #[test]
    fn path_lookup_by_instant() {
        let a = dummy_answer();
        assert_eq!(a.path_at(2.0).unwrap().nodes.len(), 2);
        assert_eq!(a.path_at(7.0).unwrap().nodes.len(), 3);
        assert!(a.path_at(11.0).is_none());
        assert!((a.travel_at(0.0).unwrap() - 4.0).abs() < 1e-9);
        assert!((a.travel_at(9.0).unwrap() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn describe_lists_partitions() {
        let text = dummy_answer().describe();
        assert!(text.contains("n0 -> n2"));
        assert!(text.contains("n0 -> n1 -> n2"));
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn fastest_path_edge_count() {
        let p = FastestPath {
            nodes: vec![NodeId(0)],
            travel: Pwl::constant(Interval::of(0.0, 1.0), 0.0).unwrap(),
        };
        assert_eq!(p.n_edges(), 0);
    }
}
