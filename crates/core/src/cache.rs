//! Per-edge travel-time function cache.
//!
//! `travel_time_fn` derives an edge's piecewise-linear travel-time
//! function from its raw piecewise-constant speed profile — an exact
//! but relatively expensive construction (cumulative-distance
//! integration, inversion, composition). The seed engine re-ran it for
//! **every path expansion**, even though the function it produces is
//! fully determined by `(speed pattern, day category, edge length)`
//! and speed profiles are periodic with the 24-hour day.
//!
//! [`TravelFnCache`] exploits both facts, the same way scalable
//! time-dependent engines precompute per-edge travel-time functions
//! (Strasser/Wagner/Zeitz; Nannicini et al.): the first request for a
//! key computes the function **once over a full period** (plus enough
//! lookahead to cover trips that cross midnight), and every subsequent
//! request is served by *restricting* that stored function to the
//! requested leaving interval — shifted by whole periods when the
//! interval lives in a later day.
//!
//! Answers are unchanged: a travel-time function under a periodic
//! profile satisfies `T(l + 1440) = T(l)`, so the restriction of the
//! full-period function to any interval equals the function
//! `travel_time_fn` would have built for that interval directly (up to
//! float rounding well inside `pwl::EPS` — the equivalence golden test
//! in `tests/equivalence.rs` checks this end to end).
//!
//! # Concurrency
//!
//! The cache is shared across queries and across the threads of
//! [`Engine::run_batch`](crate::Engine::run_batch). To keep it from
//! becoming a serialization point it is organised in two levels:
//!
//! * **Sharded shared store.** The map is split into [`SHARD_COUNT`]
//!   independent `RwLock<HashMap>` shards selected by a hash of the
//!   key, so concurrent workers contend only when they touch the same
//!   shard at the same time (and read locks never exclude each other).
//! * **Per-worker L1 ([`CacheSession`]).** Each query (and each
//!   `run_batch` worker, across all its queries) holds a private
//!   lock-free map of recently used `Arc<Pwl>` full-period functions.
//!   Steady-state lookups are served from the L1 without taking any
//!   lock. This is *exact*, not approximate: the shared store's values
//!   are immutable full-period functions keyed by everything that
//!   determines them, so an L1 copy can never go stale.
//!
//! Hit/miss counters are engine-wide atomics aggregated across shards
//! and sessions: sessions tally locally and flush on drop, so the
//! steady-state lookup path touches no shared cache line either. The
//! counters use `Ordering::Relaxed` — they are monotonic event counts
//! with no ordering obligations to other memory; readers that need a
//! consistent total (the tests, the bench report) read after the
//! worker threads have been joined, and the join edge provides the
//! happens-before.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};

use pwl::time::MINUTES_PER_DAY;
use pwl::{Interval, Pwl, PwlScratch};
use roadnet::PatternId;
use traffic::travel::travel_time_fn;
use traffic::{DayCategory, SpeedProfile};

use crate::Result;

/// Number of independent shards in the shared store (power of two).
///
/// Sixteen is comfortably above the worker counts the batch driver
/// spawns, so the expected contention on any shard is low even when
/// every worker misses at once (cold start).
pub const SHARD_COUNT: usize = 16;
const SHARD_BITS: u32 = SHARD_COUNT.trailing_zeros();

/// Entries a [`CacheSession`] L1 holds before it resets itself.
///
/// Distances key the cache by bit pattern, and generated networks
/// perturb edge lengths individually — the key space is close to *one
/// key per edge*, not per `(pattern, category)` pair. The bound must
/// therefore sit above the edge count of a metro-scale network, or the
/// L1 thrashes (clear + reinsert + shared-store round trip) in the
/// middle of every query. An entry is a 16-byte key and an `Arc`, so
/// even full this is ~2 MB per worker; the reset stays as a backstop
/// for truly unbounded key streams.
const L1_CAPACITY: usize = 65_536;

/// Cache key: everything that determines an edge travel-time function.
///
/// Distance is keyed by its bit pattern — edges with the same length
/// (grid networks have many) share one entry; NaN cannot occur because
/// `travel_time_fn` rejects non-finite distances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    pattern: PatternId,
    category: DayCategory,
    distance_bits: u64,
}

impl Key {
    /// Shard index: Fibonacci-hash the mixed fields and keep the top
    /// bits (the multiplier diffuses low-entropy inputs like small
    /// pattern ids into the high bits).
    fn shard(&self) -> usize {
        let mixed = self.distance_bits
            ^ (u64::from(self.pattern.0) << 32)
            ^ (u64::from(self.category.0) << 24);
        (mixed.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - SHARD_BITS)) as usize
    }
}

/// Multiply-xor hasher for the small fixed-width [`Key`]: the L1 is
/// probed once per candidate edge, where SipHash's per-hash setup cost
/// is most of a lookup. Not DoS-resistant — fine for keys derived from
/// the network's own pattern ids and edge lengths, not external input.
#[derive(Debug, Default)]
struct KeyHasher(u64);

impl KeyHasher {
    fn mix(&mut self, v: u64) {
        self.0 = (self.0 ^ v)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(5);
    }
}

impl Hasher for KeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.mix(u64::from(b));
        }
    }

    fn write_u8(&mut self, v: u8) {
        self.mix(u64::from(v));
    }

    fn write_u16(&mut self, v: u16) {
        self.mix(u64::from(v));
    }

    fn write_u32(&mut self, v: u32) {
        self.mix(u64::from(v));
    }

    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }
}

/// `BuildHasher` for [`KeyHasher`]-keyed maps.
#[derive(Debug, Clone, Copy, Default)]
struct KeyHashBuilder;

impl BuildHasher for KeyHashBuilder {
    type Hasher = KeyHasher;

    fn build_hasher(&self) -> KeyHasher {
        KeyHasher::default()
    }
}

/// The cache's map type: [`Key`]-keyed, cheaply hashed.
type KeyMap<V> = HashMap<Key, V, KeyHashBuilder>;

/// Retired per-worker state — a warm L1 and a warm scratch pool —
/// parked between sessions.
///
/// Reviving it is exact for the same reason the L1 itself is: entries
/// are immutable full-period functions fully determined by their key,
/// and [`PwlScratch`] carries no state between calls (its contract),
/// so a revived session differs from a fresh one only in how little it
/// allocates.
#[derive(Default)]
struct SessionState {
    l1: KeyMap<Arc<Pwl>>,
    scratch: PwlScratch,
}

/// Retired session states kept for revival; beyond this they are
/// dropped. Sized above the batch driver's worker counts, and idle
/// states are bounded (L1 entries are `Arc`s, scratch pools cap
/// themselves), so this is megabytes, not unbounded growth.
const RETIRED_CAP: usize = 32;

/// Engine-wide cache of full-period edge travel-time functions.
pub struct TravelFnCache {
    enabled: bool,
    shards: Vec<RwLock<KeyMap<Arc<Pwl>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserted: AtomicU64,
    retired_entries: AtomicU64,
    /// Warm state of closed sessions, revived by [`Self::session`] so
    /// the one-shot query APIs (which open a session per call) keep
    /// their L1 and scratch pool warm across queries.
    retired: Mutex<Vec<SessionState>>,
}

impl std::fmt::Debug for TravelFnCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TravelFnCache")
            .field("enabled", &self.enabled)
            .field("entries", &self.len())
            .finish_non_exhaustive()
    }
}

/// A snapshot of the cache's lifetime counters.
///
/// Counters are `Ordering::Relaxed` atomics: individually exact and
/// monotonic, but a snapshot taken while worker threads are still
/// running may observe one counter ahead of the other. Snapshots taken
/// after the workers have been joined (how every test and report reads
/// them) are exact totals — the join provides the happens-before edge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Requests served from a stored full-period function (shared
    /// store or a session L1).
    pub hits: u64,
    /// Requests that had to build the full-period function first.
    pub misses: u64,
    /// Entries actually inserted into the shared store (≤ `misses`:
    /// racing builders both count a miss but only the first inserts,
    /// and a disabled cache never inserts).
    pub inserted: u64,
    /// Entries flushed by [`TravelFnCache::retire_patterns`] when the
    /// epoch layer proved their pattern id unreferenced by every live
    /// network version. The reconciliation identity
    /// `resident == inserted − retired` holds at every quiescent
    /// point, across any number of epoch swaps.
    pub retired: u64,
}

impl CacheCounters {
    /// Entries the identity says must be resident right now.
    pub fn expected_resident(&self) -> u64 {
        self.inserted - self.retired
    }
}

impl std::ops::Sub for CacheCounters {
    type Output = CacheCounters;

    /// Per-epoch counter delta: `end − start` of two snapshots of the
    /// same monotone counters (the per-epoch reconciliation the epoch
    /// tests pin). Saturating, so a misordered pair cannot panic.
    fn sub(self, rhs: CacheCounters) -> CacheCounters {
        CacheCounters {
            hits: self.hits.saturating_sub(rhs.hits),
            misses: self.misses.saturating_sub(rhs.misses),
            inserted: self.inserted.saturating_sub(rhs.inserted),
            retired: self.retired.saturating_sub(rhs.retired),
        }
    }
}

impl TravelFnCache {
    /// An active cache.
    pub fn new() -> Self {
        TravelFnCache {
            enabled: true,
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(KeyMap::default()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserted: AtomicU64::new(0),
            retired_entries: AtomicU64::new(0),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// A disabled cache: every request recomputes from the profile,
    /// byte-for-byte the seed engine's behaviour. Used as the reference
    /// configuration by the equivalence tests and ablations.
    pub fn disabled() -> Self {
        TravelFnCache {
            enabled: false,
            ..TravelFnCache::new()
        }
    }

    /// Is the cache serving stored functions?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Lifetime hit/miss counters (shared across queries and threads).
    ///
    /// Includes every lookup made through live [`CacheSession`]s that
    /// have already flushed (sessions flush when dropped).
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserted: self.inserted.load(Ordering::Relaxed),
            retired: self.retired_entries.load(Ordering::Relaxed),
        }
    }

    /// Flush every stored entry whose pattern id `retire` selects —
    /// the epoch layer calls this with the set of pattern ids no live
    /// network version references any more (the append-only pattern
    /// table means entries can never be *stale*, only *unreachable*;
    /// this reclaims their memory and keeps the resident-entry
    /// identity `len == inserted − retired` exact across epochs).
    /// Parked session L1s are purged too; live sessions may briefly
    /// hold `Arc`s to retired functions, which is harmless — their
    /// keys can never be requested again.
    ///
    /// Returns the number of shared-store entries flushed.
    pub fn retire_patterns(&self, retire: impl Fn(PatternId) -> bool) -> u64 {
        let mut flushed = 0u64;
        for shard in &self.shards {
            let mut map = write_lock(shard);
            let before = map.len();
            map.retain(|k, _| !retire(k.pattern));
            flushed += (before - map.len()) as u64;
        }
        self.retired_entries.fetch_add(flushed, Ordering::Relaxed);
        for state in lock_retired(&self.retired).iter_mut() {
            state.l1.retain(|k, _| !retire(k.pattern));
        }
        flushed
    }

    /// Total entries across all shards (diagnostics / tests).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| read_lock(s).len()).sum()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Open a per-worker session: a private L1 over this cache whose
    /// steady-state lookups take no lock. Counters tallied by the
    /// session are flushed into the cache-wide totals when the session
    /// drops.
    ///
    /// Sessions are *revived*, not built: a closing session parks its
    /// L1 and scratch pool here, and the next `session()` call picks
    /// them up warm. The one-shot query APIs open a session per query,
    /// so without revival every serial query would rebuild its L1 from
    /// the shared store and re-grow its buffer pool from nothing.
    pub fn session(&self) -> CacheSession<'_> {
        let state = lock_retired(&self.retired).pop().unwrap_or_default();
        CacheSession {
            cache: self,
            state,
            hits: 0,
            misses: 0,
        }
    }

    /// Fetch (or build) the full-period function for `key` from the
    /// sharded store. Returns the function and whether it was already
    /// present. Does **not** touch the hit/miss counters — callers
    /// tally.
    fn full_fn(&self, key: Key, profile: &SpeedProfile, distance: f64) -> Result<(Arc<Pwl>, bool)> {
        let shard = &self.shards[key.shard()];
        // Take the read guard in its own statement so it is dropped
        // before the miss path asks for the write lock (a match on the
        // guarded lookup would keep it alive across the whole match and
        // self-deadlock).
        let cached = read_lock(shard).get(&key).cloned();
        match cached {
            Some(f) => Ok((f, true)),
            None => {
                // Compute outside the write lock; a racing thread doing
                // the same work is harmless (first insert wins, values
                // are identical by construction).
                let built = Arc::new(full_period_fn(profile, distance)?);
                let mut map = write_lock(shard);
                let entry = map.entry(key).or_insert_with(|| {
                    self.inserted.fetch_add(1, Ordering::Relaxed);
                    Arc::clone(&built)
                });
                Ok((Arc::clone(entry), false))
            }
        }
    }

    /// The travel-time function for traversing `distance` miles under
    /// `profile`, for leaving instants in `leaving`.
    ///
    /// Returns the function and whether the request was a cache hit.
    /// With the cache disabled, computes directly and reports a miss.
    ///
    /// This is the sessionless entry point (tallies the shared
    /// counters on every call); the engine's hot path goes through
    /// [`TravelFnCache::session`] instead.
    pub fn travel_fn(
        &self,
        pattern: PatternId,
        category: DayCategory,
        profile: &SpeedProfile,
        distance: f64,
        leaving: &Interval,
    ) -> Result<(Pwl, bool)> {
        if !self.enabled {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Ok((travel_time_fn(profile, distance, leaving)?, false));
        }
        let key = Key {
            pattern,
            category,
            distance_bits: distance.to_bits(),
        };
        let (full, hit) = self.full_fn(key, profile, distance)?;
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        serve(&full, profile, distance, leaving, hit)
    }
}

impl Default for TravelFnCache {
    fn default() -> Self {
        TravelFnCache::new()
    }
}

/// A per-worker view of a [`TravelFnCache`]: a private map of recently
/// used full-period functions in front of the sharded shared store.
///
/// L1 hits clone an `Arc` and take **no lock**. The L1 is exact under
/// the periodic speed model: shared-store values are immutable and
/// fully determined by the key, so a privately held `Arc` can never
/// disagree with the store. Hit/miss tallies accumulate locally and
/// flush into the cache-wide counters on drop.
///
/// The session also owns the worker's [`PwlScratch`]: the buffer pool
/// all pooled PWL kernels on this worker draw from — the session is the
/// one object that already lives exactly as long as a worker, so the
/// pool warms across every query the worker processes. When the
/// session drops, both the L1 and the scratch park in the cache's
/// retired pool for the next session to revive.
pub struct CacheSession<'c> {
    cache: &'c TravelFnCache,
    state: SessionState,
    hits: u64,
    misses: u64,
}

impl CacheSession<'_> {
    /// Session equivalent of [`TravelFnCache::travel_fn`]; identical
    /// results, lock-free on L1 hits.
    pub fn travel_fn(
        &mut self,
        pattern: PatternId,
        category: DayCategory,
        profile: &SpeedProfile,
        distance: f64,
        leaving: &Interval,
    ) -> Result<(Pwl, bool)> {
        if !self.cache.enabled {
            self.misses += 1;
            return Ok((travel_time_fn(profile, distance, leaving)?, false));
        }
        let key = Key {
            pattern,
            category,
            distance_bits: distance.to_bits(),
        };
        let (full, hit) = match self.state.l1.get(&key) {
            Some(f) => (Arc::clone(f), true),
            None => {
                let (f, hit) = self.cache.full_fn(key, profile, distance)?;
                if self.state.l1.len() >= L1_CAPACITY {
                    self.state.l1.clear();
                }
                self.state.l1.insert(key, Arc::clone(&f));
                (f, hit)
            }
        };
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        match restrict_periodic_with(&mut self.state.scratch, &full, leaving) {
            Some(f) => Ok((f, hit)),
            None => Ok((travel_time_fn(profile, distance, leaving)?, hit)),
        }
    }

    /// The worker's scratch pool, for pooled PWL kernels outside the
    /// cache itself (composition, envelope merges, recycling).
    pub fn scratch_mut(&mut self) -> &mut PwlScratch {
        &mut self.state.scratch
    }

    /// Lookups tallied by this session so far (hits, misses) — not yet
    /// visible in [`TravelFnCache::counters`] until the session drops.
    pub fn tallies(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

impl Drop for CacheSession<'_> {
    fn drop(&mut self) {
        if self.hits > 0 {
            self.cache.hits.fetch_add(self.hits, Ordering::Relaxed);
        }
        if self.misses > 0 {
            self.cache.misses.fetch_add(self.misses, Ordering::Relaxed);
        }
        // Park the warm state for the next session to revive.
        let state = std::mem::take(&mut self.state);
        let mut retired = lock_retired(&self.cache.retired);
        if retired.len() < RETIRED_CAP {
            retired.push(state);
        }
    }
}

/// Lock the retired-state pool, recovering from poison: states are
/// pushed and popped whole, so the vector is consistent even if a
/// panicking query abandoned the lock mid-call.
fn lock_retired(l: &Mutex<Vec<SessionState>>) -> MutexGuard<'_, Vec<SessionState>> {
    l.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Read-lock a shard, recovering from poison: entries are
/// immutable-once-inserted `Arc`s and insertions happen fully inside
/// one `entry().or_insert_with` call, so a map abandoned by a panicked
/// thread is always in a consistent state. Recovery keeps one
/// panicking query (isolated by the robust batch driver) from wedging
/// the cache for every later query.
fn read_lock<'l, K, V, H>(
    l: &'l RwLock<HashMap<K, V, H>>,
) -> std::sync::RwLockReadGuard<'l, HashMap<K, V, H>> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-lock a shard with the same poison recovery as [`read_lock`].
fn write_lock<'l, K, V, H>(
    l: &'l RwLock<HashMap<K, V, H>>,
) -> std::sync::RwLockWriteGuard<'l, HashMap<K, V, H>> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

/// Serve `leaving` from the full-period function, falling back to the
/// direct construction for intervals the periodic view cannot serve
/// (degenerate, wider than a day, numerically hairline at the seam) —
/// rare and still exact.
fn serve(
    full: &Pwl,
    profile: &SpeedProfile,
    distance: f64,
    leaving: &Interval,
    hit: bool,
) -> Result<(Pwl, bool)> {
    match restrict_periodic(full, leaving) {
        Some(f) => Ok((f, hit)),
        None => Ok((travel_time_fn(profile, distance, leaving)?, hit)),
    }
}

/// Build the edge's travel-time function over one full day.
///
/// The domain is exactly `[0, 1440]`; `travel_time_fn` internally
/// extends its integration window far enough past the end of the day
/// to cover any arrival (slack `distance / v_min`), so the function is
/// exact for every leaving instant in the day even when the traversal
/// crosses midnight.
fn full_period_fn(profile: &SpeedProfile, distance: f64) -> Result<Pwl> {
    let day = Interval::of(0.0, MINUTES_PER_DAY);
    Ok(travel_time_fn(profile, distance, &day)?)
}

/// Restrict the full-period function `full` (domain `[0, 1440]`,
/// periodic semantics) to an arbitrary `leaving` interval, exploiting
/// `T(l + 1440) = T(l)`.
///
/// Returns `None` for requests better served by direct construction:
/// degenerate or near-degenerate intervals and intervals spanning a
/// full day or more.
fn restrict_periodic(full: &Pwl, leaving: &Interval) -> Option<Pwl> {
    if leaving.is_degenerate() || leaving.len() >= MINUTES_PER_DAY {
        return None;
    }
    let period = (leaving.lo() / MINUTES_PER_DAY).floor();
    let shift = period * MINUTES_PER_DAY;
    let lo = leaving.lo() - shift;
    let hi = leaving.hi() - shift;
    if hi <= MINUTES_PER_DAY {
        // Entirely within one period: restrict and shift back.
        let r = full.restrict(&Interval::of(lo, hi)).ok()?;
        return Some(shifted(r, shift));
    }
    // Wraps the day boundary: splice [lo, 1440] with [0, hi - 1440]
    // moved one period later. T(0) == T(1440) under periodicity, so the
    // seam is continuous.
    let left = full.restrict(&Interval::of(lo, MINUTES_PER_DAY)).ok()?;
    let right = full
        .restrict(&Interval::of(0.0, hi - MINUTES_PER_DAY))
        .ok()?;
    let glued = left.concat(&shifted(right, MINUTES_PER_DAY)).ok()?;
    Some(shifted(glued, shift))
}

/// `shift_x` that keeps zero shifts exact (no `+ 0.0` rounding noise).
fn shifted(f: Pwl, dx: f64) -> Pwl {
    if dx == 0.0 {
        f
    } else {
        f.shift_x(dx)
    }
}

/// Pooled twin of [`restrict_periodic`]: the common within-day case
/// builds its restriction into buffers recycled through `scratch` and
/// shifts in place — bit-identical output, no steady-state allocation.
/// Wrap-around requests (interval straddles the day seam) are rare and
/// fall back to the allocating splice.
fn restrict_periodic_with(scratch: &mut PwlScratch, full: &Pwl, leaving: &Interval) -> Option<Pwl> {
    if leaving.is_degenerate() || leaving.len() >= MINUTES_PER_DAY {
        return None;
    }
    let period = (leaving.lo() / MINUTES_PER_DAY).floor();
    let shift = period * MINUTES_PER_DAY;
    let lo = leaving.lo() - shift;
    let hi = leaving.hi() - shift;
    if hi <= MINUTES_PER_DAY {
        let mut r = full.restrict_with(scratch, &Interval::of(lo, hi)).ok()?;
        r.shift_x_in_place(shift);
        return Some(r);
    }
    restrict_periodic(full, leaving)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwl::time::hm;
    use pwl::{approx_eq, Interval};

    fn rush_profile() -> SpeedProfile {
        SpeedProfile::with_rush_window(1.0, 0.4, hm(7, 0), hm(9, 30)).unwrap()
    }

    fn direct(profile: &SpeedProfile, d: f64, iv: &Interval) -> Pwl {
        travel_time_fn(profile, d, iv).unwrap()
    }

    #[test]
    fn cached_restriction_matches_direct_within_day() {
        let cache = TravelFnCache::new();
        let profile = rush_profile();
        let iv = Interval::of(hm(6, 30), hm(8, 45));
        let (cached, hit0) = cache
            .travel_fn(PatternId(1), DayCategory::WORKDAY, &profile, 3.0, &iv)
            .unwrap();
        assert!(!hit0, "first request must miss");
        let want = direct(&profile, 3.0, &iv);
        assert!(cached.domain().approx_eq(&want.domain()));
        for k in 0..=96 {
            let l = iv.lo() + iv.len() * (k as f64) / 96.0;
            assert!(
                approx_eq(cached.eval(l), want.eval(l)),
                "l={l}: {} vs {}",
                cached.eval(l),
                want.eval(l)
            );
        }
        let (_, hit1) = cache
            .travel_fn(PatternId(1), DayCategory::WORKDAY, &profile, 3.0, &iv)
            .unwrap();
        assert!(hit1, "second request must hit");
        assert_eq!(
            cache.counters(),
            CacheCounters {
                hits: 1,
                misses: 1,
                inserted: 1,
                retired: 0
            }
        );
    }

    #[test]
    fn cached_restriction_matches_direct_across_midnight() {
        let cache = TravelFnCache::new();
        let profile = rush_profile();
        // interval straddling midnight, one day out
        let iv = Interval::of(hm(23, 10) + MINUTES_PER_DAY, hm(25, 40) + MINUTES_PER_DAY);
        let (cached, _) = cache
            .travel_fn(PatternId(2), DayCategory::WORKDAY, &profile, 5.0, &iv)
            .unwrap();
        let want = direct(&profile, 5.0, &iv);
        for k in 0..=96 {
            let l = iv.lo() + iv.len() * (k as f64) / 96.0;
            assert!(
                approx_eq(cached.eval(l), want.eval(l)),
                "l={l}: {} vs {}",
                cached.eval(l),
                want.eval(l)
            );
        }
    }

    #[test]
    fn keys_distinguish_distance_category_pattern() {
        let cache = TravelFnCache::new();
        let profile = rush_profile();
        let iv = Interval::of(hm(7, 0), hm(8, 0));
        let p = PatternId(3);
        cache
            .travel_fn(p, DayCategory::WORKDAY, &profile, 1.0, &iv)
            .unwrap();
        cache
            .travel_fn(p, DayCategory::WORKDAY, &profile, 2.0, &iv)
            .unwrap();
        cache
            .travel_fn(p, DayCategory::NON_WORKDAY, &profile, 1.0, &iv)
            .unwrap();
        cache
            .travel_fn(PatternId(4), DayCategory::WORKDAY, &profile, 1.0, &iv)
            .unwrap();
        assert_eq!(
            cache.counters(),
            CacheCounters {
                hits: 0,
                misses: 4,
                inserted: 4,
                retired: 0
            }
        );
        assert_eq!(cache.len(), 4);
        cache
            .travel_fn(p, DayCategory::WORKDAY, &profile, 1.0, &iv)
            .unwrap();
        assert_eq!(
            cache.counters(),
            CacheCounters {
                hits: 1,
                misses: 4,
                inserted: 4,
                retired: 0
            }
        );
    }

    #[test]
    fn disabled_cache_always_misses_and_matches_direct() {
        let cache = TravelFnCache::disabled();
        assert!(!cache.is_enabled());
        let profile = rush_profile();
        let iv = Interval::of(hm(6, 0), hm(10, 0));
        for _ in 0..3 {
            let (f, hit) = cache
                .travel_fn(PatternId(9), DayCategory::WORKDAY, &profile, 2.0, &iv)
                .unwrap();
            assert!(!hit);
            let want = direct(&profile, 2.0, &iv);
            for l in [hm(6, 0), hm(7, 30), hm(9, 59)] {
                assert!(approx_eq(f.eval(l), want.eval(l)));
            }
        }
        assert_eq!(
            cache.counters(),
            CacheCounters {
                hits: 0,
                misses: 3,
                inserted: 0,
                retired: 0
            }
        );
        assert!(cache.is_empty());
    }

    #[test]
    fn degenerate_and_wide_intervals_fall_back() {
        let profile = rush_profile();
        let full = full_period_fn(&profile, 2.0).unwrap();
        assert!(restrict_periodic(&full, &Interval::of(5.0, 5.0)).is_none());
        assert!(restrict_periodic(&full, &Interval::of(0.0, 2.0 * MINUTES_PER_DAY)).is_none());
        // but the cache still serves them via direct construction
        let cache = TravelFnCache::new();
        let (f, _) = cache
            .travel_fn(
                PatternId(5),
                DayCategory::WORKDAY,
                &profile,
                2.0,
                &Interval::of(5.0, 5.0),
            )
            .unwrap();
        assert!(approx_eq(
            f.eval(5.0),
            travel_time_fn(&profile, 2.0, &Interval::of(5.0, 5.0))
                .unwrap()
                .eval(5.0)
        ));
    }

    #[test]
    fn shared_across_threads() {
        let cache = std::sync::Arc::new(TravelFnCache::new());
        let profile = rush_profile();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = std::sync::Arc::clone(&cache);
                let profile = profile.clone();
                scope.spawn(move || {
                    for k in 0..8 {
                        let iv = Interval::of(hm(6, k), hm(9, k));
                        cache
                            .travel_fn(PatternId(7), DayCategory::WORKDAY, &profile, 2.5, &iv)
                            .unwrap();
                    }
                });
            }
        });
        let c = cache.counters();
        assert_eq!(c.hits + c.misses, 32);
        assert!(c.misses >= 1);
        assert!(c.hits >= 28, "at most one build per racing thread: {c:?}");
    }

    #[test]
    fn session_serves_from_l1_and_flushes_on_drop() {
        let cache = TravelFnCache::new();
        let profile = rush_profile();
        let iv = Interval::of(hm(6, 30), hm(8, 0));
        {
            let mut session = cache.session();
            let (a, hit0) = session
                .travel_fn(PatternId(1), DayCategory::WORKDAY, &profile, 3.0, &iv)
                .unwrap();
            assert!(!hit0);
            let (b, hit1) = session
                .travel_fn(PatternId(1), DayCategory::WORKDAY, &profile, 3.0, &iv)
                .unwrap();
            assert!(hit1, "second request served from the session L1");
            for k in 0..=16 {
                let l = iv.lo() + iv.len() * f64::from(k) / 16.0;
                assert!(approx_eq(a.eval(l), b.eval(l)));
            }
            assert_eq!(session.tallies(), (1, 1));
            // hit/miss tallies not yet flushed (inserts are counted at
            // insert time, not session close)
            assert_eq!(
                cache.counters(),
                CacheCounters {
                    inserted: 1,
                    ..CacheCounters::default()
                }
            );
        }
        // flushed on drop
        assert_eq!(
            cache.counters(),
            CacheCounters {
                hits: 1,
                misses: 1,
                inserted: 1,
                retired: 0
            }
        );
        // a fresh session hits the shared store, not its (empty) L1
        {
            let mut session = cache.session();
            let (_, hit) = session
                .travel_fn(PatternId(1), DayCategory::WORKDAY, &profile, 3.0, &iv)
                .unwrap();
            assert!(hit);
        }
        assert_eq!(
            cache.counters(),
            CacheCounters {
                hits: 2,
                misses: 1,
                inserted: 1,
                retired: 0
            }
        );
    }

    #[test]
    fn session_matches_sessionless_and_direct() {
        let cache = TravelFnCache::new();
        let profile = rush_profile();
        let mut session = cache.session();
        for (d, lo, len) in [(1.0, 390.0, 90.0), (2.5, 1400.0, 90.0), (0.7, 417.3, 33.3)] {
            let iv = Interval::of(lo, lo + len);
            let (s, _) = session
                .travel_fn(PatternId(2), DayCategory::WORKDAY, &profile, d, &iv)
                .unwrap();
            let (c, _) = cache
                .travel_fn(PatternId(2), DayCategory::WORKDAY, &profile, d, &iv)
                .unwrap();
            let want = direct(&profile, d, &iv);
            for k in 0..=32 {
                let l = iv.lo() + iv.len() * f64::from(k) / 32.0;
                assert!(approx_eq(s.eval(l), want.eval(l)), "session at {l}");
                assert!(approx_eq(c.eval(l), want.eval(l)), "sessionless at {l}");
            }
        }
    }

    #[test]
    fn disabled_session_always_misses() {
        let cache = TravelFnCache::disabled();
        let profile = rush_profile();
        let iv = Interval::of(hm(6, 0), hm(7, 0));
        {
            let mut session = cache.session();
            for _ in 0..3 {
                let (_, hit) = session
                    .travel_fn(PatternId(1), DayCategory::WORKDAY, &profile, 2.0, &iv)
                    .unwrap();
                assert!(!hit);
            }
        }
        assert_eq!(
            cache.counters(),
            CacheCounters {
                hits: 0,
                misses: 3,
                inserted: 0,
                retired: 0
            }
        );
    }

    #[test]
    fn retire_patterns_flushes_only_selected_ids() {
        let cache = TravelFnCache::new();
        let profile = rush_profile();
        let iv = Interval::of(hm(7, 0), hm(8, 0));
        for p in 0..4u16 {
            cache
                .travel_fn(PatternId(p), DayCategory::WORKDAY, &profile, 1.0, &iv)
                .unwrap();
        }
        assert_eq!(cache.len(), 4);
        let flushed = cache.retire_patterns(|p| p.0 >= 2);
        assert_eq!(flushed, 2);
        assert_eq!(cache.len(), 2);
        let c = cache.counters();
        assert_eq!(c.retired, 2);
        assert_eq!(c.expected_resident(), cache.len() as u64);
        // surviving ids still hit; retired ids rebuild (fresh insert)
        let (_, hit) = cache
            .travel_fn(PatternId(0), DayCategory::WORKDAY, &profile, 1.0, &iv)
            .unwrap();
        assert!(hit);
        let (_, hit) = cache
            .travel_fn(PatternId(3), DayCategory::WORKDAY, &profile, 1.0, &iv)
            .unwrap();
        assert!(!hit);
        let c = cache.counters();
        assert_eq!(c.inserted, 5);
        assert_eq!(c.expected_resident(), cache.len() as u64);
    }

    #[test]
    fn keys_spread_over_shards() {
        // Not a distribution-quality test — just that sharding is
        // actually in effect (different keys land on more than one
        // shard) and every shard index is in range.
        let mut seen = std::collections::HashSet::new();
        for p in 0..32u16 {
            for d in 1..=8u64 {
                let key = Key {
                    pattern: PatternId(p),
                    category: DayCategory::WORKDAY,
                    distance_bits: (d as f64 * 0.25).to_bits(),
                };
                let s = key.shard();
                assert!(s < SHARD_COUNT);
                seen.insert(s);
            }
        }
        assert!(
            seen.len() > SHARD_COUNT / 2,
            "only {} shards hit",
            seen.len()
        );
    }
}
