//! Per-edge travel-time function cache.
//!
//! `travel_time_fn` derives an edge's piecewise-linear travel-time
//! function from its raw piecewise-constant speed profile — an exact
//! but relatively expensive construction (cumulative-distance
//! integration, inversion, composition). The seed engine re-ran it for
//! **every path expansion**, even though the function it produces is
//! fully determined by `(speed pattern, day category, edge length)`
//! and speed profiles are periodic with the 24-hour day.
//!
//! [`TravelFnCache`] exploits both facts, the same way scalable
//! time-dependent engines precompute per-edge travel-time functions
//! (Strasser/Wagner/Zeitz; Nannicini et al.): the first request for a
//! key computes the function **once over a full period** (plus enough
//! lookahead to cover trips that cross midnight), and every subsequent
//! request is served by *restricting* that stored function to the
//! requested leaving interval — shifted by whole periods when the
//! interval lives in a later day.
//!
//! Answers are unchanged: a travel-time function under a periodic
//! profile satisfies `T(l + 1440) = T(l)`, so the restriction of the
//! full-period function to any interval equals the function
//! `travel_time_fn` would have built for that interval directly (up to
//! float rounding well inside `pwl::EPS` — the equivalence golden test
//! in `tests/equivalence.rs` checks this end to end).
//!
//! The cache is shared across queries and across the threads of
//! [`Engine::run_batch`](crate::Engine::run_batch): lookups take a read
//! lock, the one-time construction takes a short write lock, and
//! hit/miss counters are atomics surfaced both per-query (in
//! [`QueryStats`](crate::QueryStats)) and engine-wide.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use pwl::time::MINUTES_PER_DAY;
use pwl::{Interval, Pwl};
use roadnet::PatternId;
use traffic::travel::travel_time_fn;
use traffic::{DayCategory, SpeedProfile};

use crate::Result;

/// Cache key: everything that determines an edge travel-time function.
///
/// Distance is keyed by its bit pattern — edges with the same length
/// (grid networks have many) share one entry; NaN cannot occur because
/// `travel_time_fn` rejects non-finite distances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    pattern: PatternId,
    category: DayCategory,
    distance_bits: u64,
}

/// Engine-wide cache of full-period edge travel-time functions.
#[derive(Debug)]
pub struct TravelFnCache {
    enabled: bool,
    map: RwLock<HashMap<Key, Arc<Pwl>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A snapshot of the cache's lifetime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Requests served from a stored full-period function.
    pub hits: u64,
    /// Requests that had to build the full-period function first.
    pub misses: u64,
}

impl TravelFnCache {
    /// An active cache.
    pub fn new() -> Self {
        TravelFnCache {
            enabled: true,
            map: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// A disabled cache: every request recomputes from the profile,
    /// byte-for-byte the seed engine's behaviour. Used as the reference
    /// configuration by the equivalence tests and ablations.
    pub fn disabled() -> Self {
        TravelFnCache {
            enabled: false,
            ..TravelFnCache::new()
        }
    }

    /// Is the cache serving stored functions?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Lifetime hit/miss counters (shared across queries and threads).
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// The travel-time function for traversing `distance` miles under
    /// `profile`, for leaving instants in `leaving`.
    ///
    /// Returns the function and whether the request was a cache hit.
    /// With the cache disabled, computes directly and reports a miss.
    pub fn travel_fn(
        &self,
        pattern: PatternId,
        category: DayCategory,
        profile: &SpeedProfile,
        distance: f64,
        leaving: &Interval,
    ) -> Result<(Pwl, bool)> {
        if !self.enabled {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Ok((travel_time_fn(profile, distance, leaving)?, false));
        }

        let key = Key {
            pattern,
            category,
            distance_bits: distance.to_bits(),
        };
        // Take the read guard in its own statement so it is dropped
        // before the miss path asks for the write lock (a match on the
        // guarded lookup would keep it alive across the whole match and
        // self-deadlock).
        let cached = self.map.read().expect("cache lock").get(&key).cloned();
        let (full, hit) = match cached {
            Some(f) => (f, true),
            None => {
                // Compute outside the write lock; a racing thread doing
                // the same work is harmless (last insert wins, values
                // are identical by construction).
                let built = Arc::new(full_period_fn(profile, distance)?);
                let mut map = self.map.write().expect("cache lock");
                let entry = map.entry(key).or_insert_with(|| Arc::clone(&built));
                (Arc::clone(entry), false)
            }
        };
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }

        match restrict_periodic(&full, leaving) {
            Some(f) => Ok((f, hit)),
            // Intervals the periodic view cannot serve (degenerate,
            // wider than a day, numerically hairline at the seam) fall
            // back to the direct construction — rare and still exact.
            None => Ok((travel_time_fn(profile, distance, leaving)?, hit)),
        }
    }
}

impl Default for TravelFnCache {
    fn default() -> Self {
        TravelFnCache::new()
    }
}

/// Build the edge's travel-time function over one full day.
///
/// The domain is exactly `[0, 1440]`; `travel_time_fn` internally
/// extends its integration window far enough past the end of the day
/// to cover any arrival (slack `distance / v_min`), so the function is
/// exact for every leaving instant in the day even when the traversal
/// crosses midnight.
fn full_period_fn(profile: &SpeedProfile, distance: f64) -> Result<Pwl> {
    let day = Interval::of(0.0, MINUTES_PER_DAY);
    Ok(travel_time_fn(profile, distance, &day)?)
}

/// Restrict the full-period function `full` (domain `[0, 1440]`,
/// periodic semantics) to an arbitrary `leaving` interval, exploiting
/// `T(l + 1440) = T(l)`.
///
/// Returns `None` for requests better served by direct construction:
/// degenerate or near-degenerate intervals and intervals spanning a
/// full day or more.
fn restrict_periodic(full: &Pwl, leaving: &Interval) -> Option<Pwl> {
    if leaving.is_degenerate() || leaving.len() >= MINUTES_PER_DAY {
        return None;
    }
    let period = (leaving.lo() / MINUTES_PER_DAY).floor();
    let shift = period * MINUTES_PER_DAY;
    let lo = leaving.lo() - shift;
    let hi = leaving.hi() - shift;
    if hi <= MINUTES_PER_DAY {
        // Entirely within one period: restrict and shift back.
        let r = full.restrict(&Interval::of(lo, hi)).ok()?;
        return Some(shifted(r, shift));
    }
    // Wraps the day boundary: splice [lo, 1440] with [0, hi - 1440]
    // moved one period later. T(0) == T(1440) under periodicity, so the
    // seam is continuous.
    let left = full.restrict(&Interval::of(lo, MINUTES_PER_DAY)).ok()?;
    let right = full
        .restrict(&Interval::of(0.0, hi - MINUTES_PER_DAY))
        .ok()?;
    let glued = left.concat(&shifted(right, MINUTES_PER_DAY)).ok()?;
    Some(shifted(glued, shift))
}

/// `shift_x` that keeps zero shifts exact (no `+ 0.0` rounding noise).
fn shifted(f: Pwl, dx: f64) -> Pwl {
    if dx == 0.0 {
        f
    } else {
        f.shift_x(dx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwl::time::hm;
    use pwl::{approx_eq, Interval};

    fn rush_profile() -> SpeedProfile {
        SpeedProfile::with_rush_window(1.0, 0.4, hm(7, 0), hm(9, 30)).unwrap()
    }

    fn direct(profile: &SpeedProfile, d: f64, iv: &Interval) -> Pwl {
        travel_time_fn(profile, d, iv).unwrap()
    }

    #[test]
    fn cached_restriction_matches_direct_within_day() {
        let cache = TravelFnCache::new();
        let profile = rush_profile();
        let iv = Interval::of(hm(6, 30), hm(8, 45));
        let (cached, hit0) = cache
            .travel_fn(PatternId(1), DayCategory::WORKDAY, &profile, 3.0, &iv)
            .unwrap();
        assert!(!hit0, "first request must miss");
        let want = direct(&profile, 3.0, &iv);
        assert!(cached.domain().approx_eq(&want.domain()));
        for k in 0..=96 {
            let l = iv.lo() + iv.len() * (k as f64) / 96.0;
            assert!(
                approx_eq(cached.eval(l), want.eval(l)),
                "l={l}: {} vs {}",
                cached.eval(l),
                want.eval(l)
            );
        }
        let (_, hit1) = cache
            .travel_fn(PatternId(1), DayCategory::WORKDAY, &profile, 3.0, &iv)
            .unwrap();
        assert!(hit1, "second request must hit");
        assert_eq!(cache.counters(), CacheCounters { hits: 1, misses: 1 });
    }

    #[test]
    fn cached_restriction_matches_direct_across_midnight() {
        let cache = TravelFnCache::new();
        let profile = rush_profile();
        // interval straddling midnight, one day out
        let iv = Interval::of(hm(23, 10) + MINUTES_PER_DAY, hm(25, 40) + MINUTES_PER_DAY);
        let (cached, _) = cache
            .travel_fn(PatternId(2), DayCategory::WORKDAY, &profile, 5.0, &iv)
            .unwrap();
        let want = direct(&profile, 5.0, &iv);
        for k in 0..=96 {
            let l = iv.lo() + iv.len() * (k as f64) / 96.0;
            assert!(
                approx_eq(cached.eval(l), want.eval(l)),
                "l={l}: {} vs {}",
                cached.eval(l),
                want.eval(l)
            );
        }
    }

    #[test]
    fn keys_distinguish_distance_category_pattern() {
        let cache = TravelFnCache::new();
        let profile = rush_profile();
        let iv = Interval::of(hm(7, 0), hm(8, 0));
        let p = PatternId(3);
        cache
            .travel_fn(p, DayCategory::WORKDAY, &profile, 1.0, &iv)
            .unwrap();
        cache
            .travel_fn(p, DayCategory::WORKDAY, &profile, 2.0, &iv)
            .unwrap();
        cache
            .travel_fn(p, DayCategory::NON_WORKDAY, &profile, 1.0, &iv)
            .unwrap();
        cache
            .travel_fn(PatternId(4), DayCategory::WORKDAY, &profile, 1.0, &iv)
            .unwrap();
        assert_eq!(cache.counters(), CacheCounters { hits: 0, misses: 4 });
        cache
            .travel_fn(p, DayCategory::WORKDAY, &profile, 1.0, &iv)
            .unwrap();
        assert_eq!(cache.counters(), CacheCounters { hits: 1, misses: 4 });
    }

    #[test]
    fn disabled_cache_always_misses_and_matches_direct() {
        let cache = TravelFnCache::disabled();
        assert!(!cache.is_enabled());
        let profile = rush_profile();
        let iv = Interval::of(hm(6, 0), hm(10, 0));
        for _ in 0..3 {
            let (f, hit) = cache
                .travel_fn(PatternId(9), DayCategory::WORKDAY, &profile, 2.0, &iv)
                .unwrap();
            assert!(!hit);
            let want = direct(&profile, 2.0, &iv);
            for l in [hm(6, 0), hm(7, 30), hm(9, 59)] {
                assert!(approx_eq(f.eval(l), want.eval(l)));
            }
        }
        assert_eq!(cache.counters(), CacheCounters { hits: 0, misses: 3 });
    }

    #[test]
    fn degenerate_and_wide_intervals_fall_back() {
        let profile = rush_profile();
        let full = full_period_fn(&profile, 2.0).unwrap();
        assert!(restrict_periodic(&full, &Interval::of(5.0, 5.0)).is_none());
        assert!(restrict_periodic(&full, &Interval::of(0.0, 2.0 * MINUTES_PER_DAY)).is_none());
        // but the cache still serves them via direct construction
        let cache = TravelFnCache::new();
        let (f, _) = cache
            .travel_fn(
                PatternId(5),
                DayCategory::WORKDAY,
                &profile,
                2.0,
                &Interval::of(5.0, 5.0),
            )
            .unwrap();
        assert!(approx_eq(
            f.eval(5.0),
            travel_time_fn(&profile, 2.0, &Interval::of(5.0, 5.0))
                .unwrap()
                .eval(5.0)
        ));
    }

    #[test]
    fn shared_across_threads() {
        let cache = std::sync::Arc::new(TravelFnCache::new());
        let profile = rush_profile();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = std::sync::Arc::clone(&cache);
                let profile = profile.clone();
                scope.spawn(move || {
                    for k in 0..8 {
                        let iv = Interval::of(hm(6, k), hm(9, k));
                        cache
                            .travel_fn(PatternId(7), DayCategory::WORKDAY, &profile, 2.5, &iv)
                            .unwrap();
                    }
                });
            }
        });
        let c = cache.counters();
        assert_eq!(c.hits + c.misses, 32);
        assert!(c.misses >= 1);
        assert!(c.hits >= 28, "at most one build per racing thread: {c:?}");
    }
}
