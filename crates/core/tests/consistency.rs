//! Cross-validation: the interval engine against the fixed-instant
//! oracle, memory against disk, and pruning/estimator configurations
//! against each other.
//!
//! The strongest check here: for any leaving instant `l`, the allFP
//! lower border evaluated at `l` must equal the travel time found by
//! the classic fixed-instant A\* at `l` — both are exact under FIFO,
//! so they must agree to numerical precision.

use std::sync::Arc;

use allfp::baseline::astar_at;
use allfp::{Engine, EngineConfig, EstimatorKind, NaiveLb, QuerySpec};
use ccam::{CcamStore, MemStore, PlacementPolicy, DEFAULT_PAGE_SIZE};
use pwl::time::hm;
use pwl::Interval;
use roadnet::generators::{random_geometric, suffolk_like, MetroConfig};
use roadnet::{NodeId, RoadNetwork};
use traffic::DayCategory;

fn probe_instants(i: &Interval, n: usize) -> Vec<f64> {
    (0..=n)
        .map(|k| i.lo() + i.len() * (k as f64) / (n as f64))
        .collect()
}

/// allFP's lower border must match the fixed-instant oracle everywhere.
fn check_against_oracle(net: &RoadNetwork, q: &QuerySpec) {
    let engine = Engine::new(net, EngineConfig::default());
    let ans = match engine.all_fastest_paths(q) {
        Ok(a) => a,
        Err(allfp::AllFpError::Unreachable { .. }) => {
            // then the oracle must agree at every instant
            let lb = NaiveLb::new(net.max_speed());
            assert!(astar_at(net, q.source, q.target, q.interval.lo(), q.category, &lb).is_err());
            return;
        }
        Err(e) => panic!("allFP failed: {e}"),
    };
    let lb = NaiveLb::new(net.max_speed());
    for l in probe_instants(&q.interval, 24) {
        let oracle = astar_at(net, q.source, q.target, l, q.category, &lb)
            .expect("reachable per allFP")
            .travel_minutes;
        let border = ans.travel_at(l).expect("border covers I");
        assert!(
            (border - oracle).abs() <= 1e-6 * (1.0 + oracle),
            "query {:?}->{:?} at l={l}: border {border} vs oracle {oracle}",
            q.source,
            q.target
        );
        // and the tagged path, driven directly, matches the border
        let path = ans.path_at(l).expect("partition covers I");
        let driven = allfp::baseline::evaluate_path(net, &path.nodes, l, q.category).unwrap();
        assert!(
            (driven - border).abs() <= 1e-6 * (1.0 + driven),
            "driven {driven} vs border {border} at l={l}"
        );
    }
    // structural invariants of the partition
    assert!(pwl::approx_eq(ans.partition[0].0.lo(), q.interval.lo()));
    assert!(pwl::approx_eq(
        ans.partition.last().unwrap().0.hi(),
        q.interval.hi()
    ));
    for w in ans.partition.windows(2) {
        assert!(pwl::approx_eq(w[0].0.hi(), w[1].0.lo()), "gap in partition");
        assert_ne!(w[0].1, w[1].1, "adjacent sub-intervals share a path");
    }
}

#[test]
fn engine_matches_oracle_on_random_networks() {
    for seed in [1u64, 7, 23] {
        let net = random_geometric(60, 3.0, 3, seed);
        let net = net.unwrap();
        // rush-hour interval so Table 1 patterns actually vary
        let q = QuerySpec::new(
            NodeId(0),
            NodeId(37),
            Interval::of(hm(6, 30), hm(8, 0)),
            DayCategory::WORKDAY,
        );
        check_against_oracle(&net, &q);
    }
}

#[test]
fn engine_matches_oracle_on_metro() {
    let net = suffolk_like(&MetroConfig::small(42)).unwrap();
    let pairs = roadnet::workload::sample_pairs(&net, 4, 1.0, 2.5, 9).unwrap();
    for p in pairs {
        let q = QuerySpec::new(
            p.source,
            p.target,
            Interval::of(hm(7, 0), hm(8, 0)),
            DayCategory::WORKDAY,
        );
        check_against_oracle(&net, &q);
    }
}

#[test]
fn boundary_estimator_preserves_answers_and_prunes() {
    let net = suffolk_like(&MetroConfig::small(5)).unwrap();
    let pairs = roadnet::workload::sample_pairs(&net, 3, 1.5, 2.5, 4).unwrap();
    assert!(!pairs.is_empty());
    let naive = Engine::for_network(&net, EngineConfig::default()).unwrap();
    let boundary = Engine::for_network(
        &net,
        EngineConfig {
            estimator: EstimatorKind::Boundary { grid: 8 },
            ..Default::default()
        },
    )
    .unwrap();
    let mut naive_total = 0usize;
    let mut bd_total = 0usize;
    for p in &pairs {
        let q = QuerySpec::new(
            p.source,
            p.target,
            Interval::of(hm(7, 0), hm(8, 30)),
            DayCategory::WORKDAY,
        );
        let a = naive.all_fastest_paths(&q).unwrap();
        let b = boundary.all_fastest_paths(&q).unwrap();
        // identical partitioning and paths
        assert_eq!(a.partition.len(), b.partition.len());
        for (x, y) in a.partition.iter().zip(b.partition.iter()) {
            assert!(x.0.approx_eq(&y.0));
            assert_eq!(a.paths[x.1].nodes, b.paths[y.1].nodes);
        }
        naive_total += a.stats.expanded_paths;
        bd_total += b.stats.expanded_paths;
    }
    assert!(
        bd_total <= naive_total,
        "bdLB expanded more ({bd_total}) than naiveLB ({naive_total})"
    );
}

#[test]
fn partitioned_estimator_preserves_answers() {
    let net = suffolk_like(&MetroConfig::small(5)).unwrap();
    let pairs = roadnet::workload::sample_pairs(&net, 3, 1.5, 2.5, 4).unwrap();
    assert!(!pairs.is_empty());
    let naive = Engine::for_network(&net, EngineConfig::default()).unwrap();
    let part = Engine::for_network(
        &net,
        EngineConfig {
            estimator: EstimatorKind::BoundaryPartitioned { groups: 24 },
            ..Default::default()
        },
    )
    .unwrap();
    for p in &pairs {
        let q = QuerySpec::new(
            p.source,
            p.target,
            Interval::of(hm(7, 0), hm(8, 30)),
            DayCategory::WORKDAY,
        );
        let a = naive.all_fastest_paths(&q).unwrap();
        let b = part.all_fastest_paths(&q).unwrap();
        assert_eq!(a.partition.len(), b.partition.len());
        for (x, y) in a.partition.iter().zip(b.partition.iter()) {
            assert!(x.0.approx_eq(&y.0));
            assert_eq!(a.paths[x.1].nodes, b.paths[y.1].nodes);
        }
    }
}

#[test]
fn ccam_store_gives_identical_answers() {
    let net = suffolk_like(&MetroConfig::small(11)).unwrap();
    let store = Arc::new(MemStore::new(DEFAULT_PAGE_SIZE));
    let disk = CcamStore::build(&net, store, PlacementPolicy::ConnectivityClustered, 256).unwrap();

    let pairs = roadnet::workload::sample_pairs(&net, 3, 1.0, 2.0, 77).unwrap();
    let mem_engine = Engine::new(&net, EngineConfig::default());
    let disk_engine = Engine::new(&disk, EngineConfig::default());
    for p in pairs {
        let q = QuerySpec::new(
            p.source,
            p.target,
            Interval::of(hm(7, 30), hm(8, 30)),
            DayCategory::WORKDAY,
        );
        let a = mem_engine.all_fastest_paths(&q).unwrap();
        let b = disk_engine.all_fastest_paths(&q).unwrap();
        assert_eq!(a.partition.len(), b.partition.len());
        for (x, y) in a.partition.iter().zip(b.partition.iter()) {
            assert!(x.0.approx_eq(&y.0));
            assert_eq!(a.paths[x.1].nodes, b.paths[y.1].nodes);
        }
        assert_eq!(a.stats.expanded_paths, b.stats.expanded_paths);
    }
    // the disk engine actually did I/O
    let s = disk.stats();
    assert!(s.hits + s.misses > 0);
}

#[test]
fn dominance_pruning_preserves_answers_on_metro() {
    let net = suffolk_like(&MetroConfig::small(3)).unwrap();
    let pairs = roadnet::workload::sample_pairs(&net, 3, 1.0, 2.0, 5).unwrap();
    // basic = the paper's unpruned path expansion; default = pruned
    let plain = Engine::new(
        &net,
        EngineConfig {
            prune_dominated: false,
            ..EngineConfig::default()
        },
    );
    let pruned = Engine::new(&net, EngineConfig::default());
    for p in pairs {
        let q = QuerySpec::new(
            p.source,
            p.target,
            Interval::of(hm(7, 0), hm(8, 0)),
            DayCategory::WORKDAY,
        );
        let a = plain.all_fastest_paths(&q).unwrap();
        let b = pruned.all_fastest_paths(&q).unwrap();
        assert_eq!(a.partition.len(), b.partition.len());
        for (x, y) in a.partition.iter().zip(b.partition.iter()) {
            assert!(x.0.approx_eq(&y.0));
            assert_eq!(a.paths[x.1].nodes, b.paths[y.1].nodes);
        }
        assert!(b.stats.pushed <= a.stats.pushed);
    }
}

#[test]
fn midnight_crossing_window_agrees_with_oracle() {
    // Leaving late at night and arriving after midnight: the periodic
    // profile extension must behave identically in the interval engine
    // and the fixed-instant oracle.
    let net = random_geometric(50, 2.5, 3, 321).unwrap();
    let q = QuerySpec::new(
        NodeId(2),
        NodeId(47),
        Interval::of(hm(23, 30), hm(24, 0) + 45.0),
        DayCategory::WORKDAY,
    );
    check_against_oracle(&net, &q);
}

#[test]
fn single_fp_agrees_with_all_fp_minimum() {
    let net = suffolk_like(&MetroConfig::small(8)).unwrap();
    let pairs = roadnet::workload::sample_pairs(&net, 4, 1.0, 2.0, 13).unwrap();
    let engine = Engine::new(&net, EngineConfig::default());
    for p in pairs {
        let q = QuerySpec::new(
            p.source,
            p.target,
            Interval::of(hm(7, 0), hm(8, 30)),
            DayCategory::WORKDAY,
        );
        let single = engine.single_fastest_path(&q).unwrap();
        let all = engine.all_fastest_paths(&q).unwrap();
        let border_min = all.lower_border.min_value();
        assert!(
            (single.travel_minutes - border_min).abs() <= 1e-6 * (1.0 + border_min),
            "singleFP {} vs border min {}",
            single.travel_minutes,
            border_min
        );
        // singleFP must stop no later than allFP
        assert!(single.stats.expanded_paths <= all.stats.expanded_paths);
    }
}
