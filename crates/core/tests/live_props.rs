//! Property tests for the live-update path: across seeded delta
//! *sequences*, the incrementally maintained state — the delta-applied
//! network, the reused/refreshed estimator tables, and the shared
//! travel-function cache surviving every swap — is bit-for-bit
//! indistinguishable from a from-scratch build of the current epoch.

use std::sync::Arc;

use allfp::{
    build_estimator, BoundaryLb, Engine, EngineConfig, EpochManager, EstimatorKind, LiveBackend,
    PathfindBackend, QuerySpec, WeightMode,
};
use proptest::prelude::*;
use pwl::time::hm;
use pwl::Interval;
use roadnet::generators::random_geometric;
use roadnet::{NodeId, RoadNetwork};
use traffic::DayCategory;

fn boundary_config() -> EngineConfig {
    EngineConfig {
        estimator: EstimatorKind::Boundary { grid: 3 },
        ..EngineConfig::default()
    }
}

/// Fold `k` seeded deltas over `net`, returning every intermediate
/// network (index 0 is the seed network itself).
fn delta_chain(net: RoadNetwork, seeds: &[u64]) -> Vec<Arc<RoadNetwork>> {
    let mut nets = vec![Arc::new(net)];
    for (i, &s) in seeds.iter().enumerate() {
        let cur = nets.last().unwrap();
        let delta = cur.seeded_delta(s, 5, i as u64 + 1).unwrap();
        let (next, _) = cur.apply_delta(&delta).unwrap();
        nets.push(Arc::new(next));
    }
    nets
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        ..ProptestConfig::default()
    })]

    /// Delta application is a pure function: replaying the same seeded
    /// sequence from the same base network reproduces every epoch's
    /// travel behavior bit for bit (answers probed through a fresh
    /// engine per epoch, travel functions compared as raw bits).
    #[test]
    fn delta_sequences_replay_bit_for_bit(
        seed in 0u64..400,
        d1 in 0u64..1000,
        d2 in 0u64..1000,
        d3 in 0u64..1000,
    ) {
        const N: usize = 12;
        let seeds = [d1, d2, d3];
        let a = delta_chain(random_geometric(N, 1.5, 3, seed).unwrap(), &seeds);
        let b = delta_chain(random_geometric(N, 1.5, 3, seed).unwrap(), &seeds);
        let interval = Interval::of(hm(7, 0), hm(8, 30));
        for (na, nb) in a.iter().zip(b.iter()) {
            let ea = Engine::new(na.as_ref(), EngineConfig::default());
            let eb = Engine::new(nb.as_ref(), EngineConfig::default());
            for (s, t) in [(0u32, N as u32 - 1), (3, 7), (9, 2)] {
                let q = QuerySpec::new(NodeId(s), NodeId(t), interval, DayCategory::WORKDAY);
                let fa = ea.all_fastest_paths(&q).unwrap();
                let fb = eb.all_fastest_paths(&q).unwrap();
                prop_assert_eq!(fa.partition.len(), fb.partition.len());
                for (f, h) in fa.paths.iter().zip(fb.paths.iter()) {
                    prop_assert_eq!(&f.nodes, &h.nodes);
                    prop_assert_eq!(f.travel.breakpoints(), h.travel.breakpoints());
                    prop_assert_eq!(f.travel.linears(), h.travel.linears());
                }
            }
        }
    }

    /// Estimator tables across a delta chain: the distance-mode
    /// boundary tables depend only on edge lengths, so the table built
    /// over the seed network equals — field for field, `f64` bit for
    /// bit (`BoundaryLb` derives `PartialEq`) — the one built over any
    /// delta-applied successor; only the `v_max` scalar may move, and
    /// the `with_v_max` reuse path lands exactly on the rebuilt value.
    #[test]
    fn boundary_tables_survive_delta_chains_bit_for_bit(
        seed in 0u64..400,
        d1 in 0u64..1000,
        d2 in 0u64..1000,
    ) {
        const N: usize = 12;
        let nets = delta_chain(random_geometric(N, 1.5, 3, seed).unwrap(), &[d1, d2]);
        let base = BoundaryLb::build(nets[0].as_ref(), 3, WeightMode::Distance).unwrap();
        for net in &nets[1..] {
            let rebuilt = BoundaryLb::build(net.as_ref(), 3, WeightMode::Distance).unwrap();
            let reused = base.with_v_max(net.max_speed());
            prop_assert_eq!(&reused, &rebuilt);
        }
    }

    /// The live backend — shared cache and reused estimator surviving
    /// every epoch swap — answers each epoch's queries bit-identically
    /// to a from-scratch engine (fresh cache, estimator rebuilt via
    /// `build_estimator`) over that epoch's network. This is the
    /// per-epoch cache-exactness identity: stale entries can never
    /// leak across a swap because pattern ids are append-only.
    #[test]
    fn live_backend_equals_from_scratch_engine_per_epoch(
        seed in 0u64..400,
        d1 in 0u64..1000,
        d2 in 0u64..1000,
        d3 in 0u64..1000,
    ) {
        const N: usize = 12;
        let net = random_geometric(N, 1.5, 3, seed).unwrap();
        let mgr = EpochManager::new(net, boundary_config()).unwrap();
        let live = LiveBackend::new(&mgr);
        let interval = Interval::of(hm(6, 45), hm(8, 15));
        let probes = [(0u32, N as u32 - 1), (2, 9), (7, 4), (11, 1)];
        for (i, d) in [d1, d2, d3].into_iter().enumerate() {
            // Query the current epoch (warming the shared cache), then
            // swap and re-check: answers on the *new* epoch must match
            // a fresh engine even though the cache carries entries
            // from every previous epoch.
            let delta = mgr
                .current()
                .network()
                .seeded_delta(d, 5, i as u64 + 1)
                .unwrap();
            mgr.apply_delta(&delta).unwrap();
            let epoch = mgr.current();
            let fresh_net = Arc::clone(epoch.network());
            let config = boundary_config();
            let estimator = build_estimator(fresh_net.as_ref(), &config).unwrap();
            let fresh = Engine::with_estimator(fresh_net.as_ref(), estimator, config);
            for (s, t) in probes {
                let q = QuerySpec::new(NodeId(s), NodeId(t), interval, DayCategory::WORKDAY)
                    .with_epoch(epoch.id());
                let a = live.single_fastest_path(&q).unwrap();
                let b = fresh.single_fastest_path(&q).unwrap();
                prop_assert_eq!(&a.path.nodes, &b.path.nodes);
                prop_assert_eq!(a.travel_minutes.to_bits(), b.travel_minutes.to_bits());
                prop_assert_eq!(a.path.travel.breakpoints(), b.path.travel.breakpoints());
                prop_assert_eq!(a.path.travel.linears(), b.path.travel.linears());
            }
        }
        let stats = mgr.stats();
        prop_assert!(stats.reconciles(), "epoch stats do not reconcile: {:?}", stats);
    }
}
