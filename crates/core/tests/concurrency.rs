//! Concurrent-correctness stress tests for the sharded query stack.
//!
//! PR 1 proved the travel-function cache *exact* (golden equivalence
//! against the uncached engine); this file proves the *concurrent*
//! implementation keeps that exactness and its accounting under real
//! thread interleavings:
//!
//! * many threads hammering the sharded [`TravelFnCache`] through
//!   per-worker [`CacheSession`] L1s must return bit-identical
//!   functions to direct construction, and once the threads are joined
//!   (and sessions dropped) `hits + misses` must equal the number of
//!   lookups issued — no lookup lost, none double-counted;
//! * [`Engine::run_batch_with_threads`] at several widths must return
//!   exactly the serial answers, with the engine-wide counters
//!   advancing by exactly the lookups the batch reported.
//!
//! Seeds are fixed; scheduling is the only nondeterminism, which is
//! the point — run under an unpinned `RUST_TEST_THREADS` to let the
//! interleavings vary (`scripts/check.sh` does).

use allfp::{CancelToken, Engine, EngineConfig, QueryOutcome, QuerySpec, TravelFnCache};
use pwl::time::hm;
use pwl::Interval;
use roadnet::generators::random_geometric;
use roadnet::{NodeId, PatternId};
use traffic::{DayCategory, SpeedProfile};

/// Deterministic 64-bit LCG (same constants as `MMIX`); good enough to
/// scatter threads over a key space without pulling in a PRNG.
fn lcg(x: &mut u64) -> u64 {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *x
}

#[test]
fn sharded_cache_sessions_are_exact_under_contention() {
    let n_threads = 8usize;
    let lookups_per_thread = 400usize;
    // small key space => heavy cross-thread sharing on every shard
    let distances = [0.5, 1.0, 1.5, 2.0, 3.0, 4.5, 6.0, 8.0];
    let profile = SpeedProfile::with_rush_window(1.0, 0.4, hm(7, 0), hm(9, 30)).unwrap();

    let cache = TravelFnCache::new();
    let reference = TravelFnCache::disabled(); // direct construction
    std::thread::scope(|scope| {
        for t in 0..n_threads {
            let cache = &cache;
            let reference = &reference;
            let profile = &profile;
            let distances = &distances;
            scope.spawn(move || {
                let mut session = cache.session();
                let mut x = 0x9E37_79B9 * (t as u64 + 1);
                for _ in 0..lookups_per_thread {
                    let d = distances[(lcg(&mut x) % distances.len() as u64) as usize];
                    let pattern = PatternId((lcg(&mut x) % 4) as u16);
                    let category = if lcg(&mut x).is_multiple_of(2) {
                        DayCategory::WORKDAY
                    } else {
                        DayCategory::NON_WORKDAY
                    };
                    let lo = hm(5, 0) + (lcg(&mut x) % 600) as f64;
                    let iv = Interval::of(lo, lo + 30.0 + (lcg(&mut x) % 90) as f64);
                    let (got, _) = session
                        .travel_fn(pattern, category, profile, d, &iv)
                        .unwrap();
                    let (want, _) = reference
                        .travel_fn(pattern, category, profile, d, &iv)
                        .unwrap();
                    for k in 0..=8 {
                        let l = iv.lo() + iv.len() * f64::from(k) / 8.0;
                        let (g, w) = (got.eval_clamped(l), want.eval_clamped(l));
                        assert!(
                            (g - w).abs() <= 1e-9 * (1.0 + w.abs()),
                            "cached {g} vs direct {w} at l={l} (d={d})"
                        );
                    }
                }
                // session drops here, flushing its tallies
            });
        }
    });
    let c = cache.counters();
    let total = (n_threads * lookups_per_thread) as u64;
    assert_eq!(
        c.hits + c.misses,
        total,
        "hits {} + misses {} must equal the {total} lookups issued",
        c.hits,
        c.misses
    );
    // 8 distances × 4 patterns × 2 categories = 64 distinct keys: the
    // shared store holds at most one entry per key no matter how many
    // threads raced to build it
    assert!(cache.len() <= 64, "store holds {} entries", cache.len());
    assert!(c.hits >= total - 64 * n_threads as u64, "{c:?}");
}

#[test]
fn batch_stress_matches_serial_across_widths() {
    for seed in [1u64, 7, 42] {
        let net = random_geometric(120, 6.0, 3, seed).unwrap();
        let engine = Engine::new(&net, EngineConfig::default());
        let n = net.n_nodes() as u32;

        let mut x = seed ^ 0xC0FF_EE00;
        let queries: Vec<QuerySpec> = (0..24)
            .map(|_| {
                let s = NodeId((lcg(&mut x) % u64::from(n)) as u32);
                let e = NodeId((lcg(&mut x) % u64::from(n)) as u32);
                let lo = hm(6, 30) + (lcg(&mut x) % 120) as f64;
                QuerySpec::new(s, e, Interval::of(lo, lo + 25.0), DayCategory::WORKDAY)
            })
            .collect();

        let serial: Vec<_> = queries
            .iter()
            .map(|q| engine.all_fastest_paths(q))
            .collect();

        for workers in [2usize, 4, 8] {
            let before = engine.cache_counters();
            let (batch, stats) = engine.run_batch_with_threads(&queries, workers);
            let after = engine.cache_counters();

            assert_eq!(stats.total_queries(), queries.len());
            // the batch's own roll-up and the engine-wide counters must
            // agree: sessions flushed exactly once on join
            assert_eq!(
                (after.hits - before.hits) + (after.misses - before.misses),
                (stats.cache_lookups) as u64,
                "engine counters must advance by the batch's lookups (workers={workers})"
            );
            assert_eq!(stats.cache_lookups, stats.cache_hits + stats.cache_misses);

            for (i, (s, b)) in serial.iter().zip(batch.iter()).enumerate() {
                match (s, b) {
                    (Ok(s), Ok(b)) => {
                        assert_eq!(
                            s.partition.len(),
                            b.partition.len(),
                            "seed {seed} query {i} workers {workers}"
                        );
                        for (x, y) in s.partition.iter().zip(b.partition.iter()) {
                            assert!(x.0.approx_eq(&y.0));
                            assert_eq!(s.paths[x.1].nodes, b.paths[y.1].nodes);
                        }
                    }
                    (Err(_), Err(_)) => {}
                    (s, b) => panic!(
                        "seed {seed} query {i} workers {workers}: serial {} but batch {}",
                        if s.is_ok() { "succeeded" } else { "failed" },
                        if b.is_ok() { "succeeded" } else { "failed" },
                    ),
                }
            }
        }
    }
}

#[test]
fn robust_batch_is_exact_across_widths() {
    // the fault-tolerant entry point must preserve the plain batch's
    // exactness guarantee at every width when nothing goes wrong
    let net = random_geometric(100, 5.0, 3, 11).unwrap();
    let engine = Engine::new(&net, EngineConfig::default());
    let n = net.n_nodes() as u32;

    let mut x = 0x000B_0B5E_u64;
    let queries: Vec<QuerySpec> = (0..16)
        .map(|_| {
            let s = NodeId((lcg(&mut x) % u64::from(n)) as u32);
            let e = NodeId((lcg(&mut x) % u64::from(n)) as u32);
            let lo = hm(7, 0) + (lcg(&mut x) % 90) as f64;
            QuerySpec::new(s, e, Interval::of(lo, lo + 20.0), DayCategory::WORKDAY)
        })
        .collect();

    let serial: Vec<_> = queries
        .iter()
        .map(|q| engine.all_fastest_paths(q))
        .collect();

    for workers in [2usize, 4, 8] {
        let (batch, stats) = engine.run_batch_robust(&queries, workers, &CancelToken::new());
        assert_eq!(stats.total_queries(), queries.len());
        for (i, (s, b)) in serial.iter().zip(batch.iter()).enumerate() {
            match (s, b) {
                (Ok(s), Ok(QueryOutcome::Exact(b))) => {
                    assert_eq!(s.partition.len(), b.partition.len(), "query {i}");
                    for (x, y) in s.partition.iter().zip(b.partition.iter()) {
                        assert!(x.0.approx_eq(&y.0));
                        assert_eq!(s.paths[x.1].nodes, b.paths[y.1].nodes);
                    }
                }
                (Err(_), Err(_)) => {}
                (s, b) => panic!(
                    "query {i} workers {workers}: serial {:?} vs robust {:?}",
                    s.is_ok(),
                    b.is_ok()
                ),
            }
        }
    }
}
