//! Golden exact-equivalence suite: the contraction-hierarchy backend
//! must answer singleFP/allFP **bit-identically** to the flat engine —
//! same node sequences, same partition boundaries, and travel
//! functions equal knot for knot and coefficient for coefficient.
//!
//! The hierarchy guarantees this by only *selecting* winning node
//! sequences on its overlay and then re-composing their functions
//! through `Engine::route_travel_fn` — the flat engine's own pipeline.
//! These tests pin that contract on the paper's running example and on
//! seeded metro networks at two scales.

use allfp::{Engine, EngineConfig, PathfindBackend, QuerySpec};
use hierarchy::{HierarchyConfig, HierarchyEngine};
use pwl::time::hm;
use pwl::{Interval, Pwl};
use roadnet::examples::paper_running_example;
use roadnet::generators::{suffolk_like, MetroConfig};
use roadnet::workload::sample_pairs;
use roadnet::RoadNetwork;
use traffic::DayCategory;

/// Bit-for-bit function equality: same knots, same coefficients.
fn assert_pwl_identical(a: &Pwl, b: &Pwl, what: &str) {
    assert_eq!(a.breakpoints(), b.breakpoints(), "{what}: breakpoints");
    assert_eq!(a.linears(), b.linears(), "{what}: linear coefficients");
}

fn assert_equivalent_with(
    net: &RoadNetwork,
    query: &QuerySpec,
    config: HierarchyConfig,
    what: &str,
) {
    let flat = Engine::new(net, EngineConfig::default());
    let ch = HierarchyEngine::build(net, EngineConfig::default(), config).expect("hierarchy build");

    // singleFP: node sequence, minimum, argmin interval, full function.
    let fs = flat.single_fastest_path(query).expect("flat singleFP");
    let hs = ch.single_fastest_path(query).expect("ch singleFP");
    assert_eq!(fs.path.nodes, hs.path.nodes, "{what}: singleFP nodes");
    assert_eq!(
        fs.travel_minutes.to_bits(),
        hs.travel_minutes.to_bits(),
        "{what}: singleFP minimum"
    );
    assert_eq!(
        (
            fs.best_leaving.lo().to_bits(),
            fs.best_leaving.hi().to_bits()
        ),
        (
            hs.best_leaving.lo().to_bits(),
            hs.best_leaving.hi().to_bits()
        ),
        "{what}: singleFP argmin interval"
    );
    assert_pwl_identical(&fs.path.travel, &hs.path.travel, what);

    // allFP: partition boundaries, per-interval paths, functions.
    let fa = flat.all_fastest_paths(query).expect("flat allFP");
    let ha = ch.all_fastest_paths(query).expect("ch allFP");
    assert_eq!(
        fa.partition.len(),
        ha.partition.len(),
        "{what}: partition size"
    );
    for ((fi, fp), (hi, hp)) in fa.partition.iter().zip(ha.partition.iter()) {
        assert_eq!(
            (fi.lo().to_bits(), fi.hi().to_bits()),
            (hi.lo().to_bits(), hi.hi().to_bits()),
            "{what}: partition boundary"
        );
        assert_eq!(
            fa.paths[*fp].nodes, ha.paths[*hp].nodes,
            "{what}: partition path"
        );
    }
    assert_eq!(fa.paths.len(), ha.paths.len(), "{what}: path count");
    for (f, h) in fa.paths.iter().zip(ha.paths.iter()) {
        assert_eq!(f.nodes, h.nodes, "{what}: path order");
        assert_pwl_identical(&f.travel, &h.travel, what);
    }
}

/// Equivalence under the default config (compressed overlay storage,
/// one contraction thread).
fn assert_equivalent(net: &RoadNetwork, query: &QuerySpec, what: &str) {
    assert_equivalent_with(net, query, HierarchyConfig::default(), what);
}

#[test]
fn paper_running_example_equivalent() {
    let (net, ids) = paper_running_example();
    let query = QuerySpec::new(
        ids.s,
        ids.e,
        Interval::of(hm(6, 50), hm(7, 10)),
        DayCategory::WORKDAY,
    );
    assert_equivalent(&net, &query, "paper example");
}

#[test]
fn metro_small_golden_equivalence() {
    let net = suffolk_like(&MetroConfig::small(0xC0FFEE)).expect("generator");
    let pairs = sample_pairs(&net, 12, 0.5, 3.0, 0xF19).expect("pairs");
    assert!(!pairs.is_empty(), "workload sampler returned no pairs");
    let interval = Interval::of(hm(7, 0), hm(10, 0));
    for (i, p) in pairs.iter().enumerate() {
        let query = QuerySpec::new(p.source, p.target, interval, DayCategory::WORKDAY);
        assert_equivalent(&net, &query, &format!("metro-small pair {i}"));
    }
}

#[test]
fn metro_medium_golden_equivalence() {
    let net = suffolk_like(&MetroConfig::medium(0xBEEF)).expect("generator");
    let pairs = sample_pairs(&net, 4, 1.0, 4.0, 0xF19).expect("pairs");
    assert!(!pairs.is_empty(), "workload sampler returned no pairs");
    let interval = Interval::of(hm(7, 0), hm(10, 0));
    for (i, p) in pairs.iter().enumerate() {
        let query = QuerySpec::new(p.source, p.target, interval, DayCategory::WORKDAY);
        assert_equivalent(&net, &query, &format!("metro-medium pair {i}"));
    }
}

#[test]
fn exact_storage_config_equivalent() {
    // Pin the uncompressed configuration too: `overlay_compress: None`
    // stores exact shortcut functions and must stay bit-identical.
    let net = suffolk_like(&MetroConfig::small(0xC0FFEE)).expect("generator");
    let pairs = sample_pairs(&net, 4, 0.5, 3.0, 0xA11).expect("pairs");
    let interval = Interval::of(hm(7, 0), hm(10, 0));
    let config = HierarchyConfig {
        overlay_compress: None,
        ..HierarchyConfig::default()
    };
    for (i, p) in pairs.iter().enumerate() {
        let query = QuerySpec::new(p.source, p.target, interval, DayCategory::WORKDAY);
        assert_equivalent_with(&net, &query, config.clone(), &format!("exact pair {i}"));
    }
}

#[test]
fn parallel_build_equivalent() {
    // A multi-threaded contraction must yield the same (bit-identical)
    // answers as everything above; the determinism proptests pin the
    // overlay bytes, this pins the query surface end to end.
    let net = suffolk_like(&MetroConfig::small(0xC0FFEE)).expect("generator");
    let pairs = sample_pairs(&net, 4, 0.5, 3.0, 0xB22).expect("pairs");
    let interval = Interval::of(hm(7, 0), hm(10, 0));
    let config = HierarchyConfig {
        threads: 4,
        ..HierarchyConfig::default()
    };
    for (i, p) in pairs.iter().enumerate() {
        let query = QuerySpec::new(p.source, p.target, interval, DayCategory::WORKDAY);
        assert_equivalent_with(&net, &query, config.clone(), &format!("parallel pair {i}"));
    }
}

#[test]
fn compressed_overlay_shrinks_storage() {
    // The space side of the bargain: bounded-error storage must hold
    // strictly fewer pieces than exact storage on a metro network (the
    // 0.5× byte gate runs in the bench smoke suite at metro-full).
    let net = suffolk_like(&MetroConfig::small(0xC0FFEE)).expect("generator");
    let exact = HierarchyEngine::build(
        &net,
        EngineConfig::default(),
        HierarchyConfig {
            overlay_compress: None,
            ..HierarchyConfig::default()
        },
    )
    .expect("exact build");
    let compact = HierarchyEngine::build(&net, EngineConfig::default(), HierarchyConfig::default())
        .expect("compressed build");
    assert_eq!(
        exact.report().exact_pieces,
        compact.report().exact_pieces,
        "pre-reduction piece counts must agree"
    );
    assert!(
        compact.report().bytes_estimate < exact.report().bytes_estimate,
        "compressed overlay should be smaller: {} vs {}",
        compact.report().bytes_estimate,
        exact.report().bytes_estimate
    );
    assert!(
        compact.report().bytes_estimate < compact.report().exact_bytes_estimate,
        "report must expose the exact-storage baseline"
    );
}

#[test]
fn hierarchy_expands_fewer_paths() {
    // Not part of the bit-identity contract, but the whole point of
    // preprocessing: on a metro network the overlay search does far
    // less work per query than flat expansion.
    let net = suffolk_like(&MetroConfig::small(0xC0FFEE)).expect("generator");
    let flat = Engine::new(&net, EngineConfig::default());
    let ch = HierarchyEngine::build(&net, EngineConfig::default(), HierarchyConfig::default())
        .expect("hierarchy build");
    let pairs = sample_pairs(&net, 8, 1.0, 3.0, 0xF19).expect("pairs");
    let interval = Interval::of(hm(7, 0), hm(10, 0));
    let (mut flat_total, mut ch_total) = (0usize, 0usize);
    for p in &pairs {
        let query = QuerySpec::new(p.source, p.target, interval, DayCategory::WORKDAY);
        flat_total += flat
            .single_fastest_path(&query)
            .expect("flat")
            .stats
            .expanded_paths;
        ch_total += ch
            .single_fastest_path(&query)
            .expect("ch")
            .stats
            .expanded_paths;
    }
    assert!(
        ch_total * 2 < flat_total,
        "overlay search should expand far fewer paths: ch={ch_total} flat={flat_total}"
    );
}

#[test]
fn unbuilt_category_falls_back_to_flat() {
    let (net, ids) = paper_running_example();
    let query = QuerySpec::new(
        ids.s,
        ids.e,
        Interval::of(hm(6, 50), hm(7, 10)),
        DayCategory::NON_WORKDAY, // default HierarchyConfig builds WORKDAY only
    );
    assert_equivalent(&net, &query, "non-workday fallback");
}

#[test]
fn degenerate_interval_falls_back_to_flat() {
    let (net, ids) = paper_running_example();
    let flat = Engine::new(&net, EngineConfig::default());
    let ch = HierarchyEngine::build(&net, EngineConfig::default(), HierarchyConfig::default())
        .expect("hierarchy build");
    let query = QuerySpec::new(
        ids.s,
        ids.e,
        Interval::of(hm(7, 0), hm(7, 0)),
        DayCategory::WORKDAY,
    );
    let fs = flat.single_fastest_path(&query).expect("flat");
    let hs = ch.single_fastest_path(&query).expect("ch");
    assert_eq!(fs.path.nodes, hs.path.nodes);
    assert_eq!(fs.travel_minutes.to_bits(), hs.travel_minutes.to_bits());
}
