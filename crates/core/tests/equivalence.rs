//! Golden equivalence tests for the travel-function cache.
//!
//! The cache serves each edge's travel-time function by restricting a
//! stored full-period function instead of rebuilding it from the speed
//! profile per expansion. These tests pin the contract that makes the
//! optimization safe: over randomized grid and geometric networks, the
//! cached engine and a cache-disabled reference engine (the seed
//! behaviour, selected with `use_travel_cache: false`) must produce
//! **identical** allFP partitionings — same sub-intervals, same node
//! sequences, same lower border — and identical singleFP minima.

use allfp::{Engine, EngineConfig, QuerySpec};
use proptest::prelude::*;
use pwl::time::hm;
use pwl::Interval;
use roadnet::generators::{grid, random_geometric};
use roadnet::{NodeId, RoadNetwork};
use traffic::{DayCategory, RoadClass};

/// Reference config: seed-equivalent engine (no cache).
fn reference() -> EngineConfig {
    EngineConfig {
        use_travel_cache: false,
        ..EngineConfig::default()
    }
}

/// The two answers' paths on a sub-interval must be *equally fastest*:
/// the same node sequence, or — on networks with exact ties, like
/// uniform grids where two L-shaped routes share length and class —
/// distinct sequences whose travel functions agree pointwise on the
/// sub-interval (a one-ulp perturbation may flip which representative
/// wins the border merge; both are correct answers).
fn assert_equally_fastest(p: &allfp::FastestPath, q: &allfp::FastestPath, iv: &Interval) {
    if p.nodes == q.nodes {
        return;
    }
    for k in 0..=16 {
        let l = iv.lo() + iv.len() * f64::from(k) / 16.0;
        let fp = p.travel.eval_clamped(l);
        let fq = q.travel.eval_clamped(l);
        assert!(
            (fp - fq).abs() <= 1e-9 * (1.0 + fq.abs()),
            "paths {:?} and {:?} differ at {l}: {fp} vs {fq}",
            p.nodes,
            q.nodes
        );
    }
}

/// Assert two allFP answers partition the interval identically.
fn assert_same_answer(net: &RoadNetwork, q: &QuerySpec) {
    let cached = Engine::new(net, EngineConfig::default());
    let plain = Engine::new(net, reference());
    let a = cached.all_fastest_paths(q).expect("cached engine");
    let b = plain.all_fastest_paths(q).expect("reference engine");

    assert_eq!(a.partition.len(), b.partition.len(), "partition arity");
    for (x, y) in a.partition.iter().zip(b.partition.iter()) {
        assert!(x.0.approx_eq(&y.0), "sub-interval {} vs {}", x.0, y.0);
        assert_equally_fastest(&a.paths[x.1], &b.paths[y.1], &x.0);
    }
    // Lower borders agree pointwise (not just on breakpoints).
    for k in 0..=24 {
        let l = q.interval.lo() + q.interval.len() * f64::from(k) / 24.0;
        let fa = a.travel_at(l).expect("in domain");
        let fb = b.travel_at(l).expect("in domain");
        assert!(
            (fa - fb).abs() <= 1e-9 * (1.0 + fb.abs()),
            "border at {l}: {fa} vs {fb}"
        );
    }

    // singleFP minima agree.
    let sa = cached.single_fastest_path(q).expect("cached single");
    let sb = plain.single_fastest_path(q).expect("reference single");
    assert!(
        (sa.travel_minutes - sb.travel_minutes).abs() <= 1e-9 * (1.0 + sb.travel_minutes),
        "single minima {} vs {}",
        sa.travel_minutes,
        sb.travel_minutes
    );
    assert!(sa.best_leaving.approx_eq(&sb.best_leaving));
    assert_equally_fastest(&sa.path, &sb.path, &sa.best_leaving);

    // Counter consistency: every lookup is exactly a hit or a miss,
    // and the reference engine never hits.
    assert_eq!(
        a.stats.cache_hits + a.stats.cache_misses,
        a.stats.cache_lookups
    );
    assert_eq!(b.stats.cache_hits, 0);
    assert_eq!(b.stats.cache_misses, b.stats.cache_lookups);
    // The search trees are NOT asserted identical: restriction and
    // direct construction agree only up to float rounding, and a
    // last-ulp difference near an `approx_le` pruning threshold can
    // legitimately flip an individual prune. Answers are what the
    // pruning rules guarantee, and they are checked exactly above.
}

#[test]
fn grid_rush_hour_queries_match_reference() {
    // Deterministic sweep: grid sizes × classes × corner-to-corner and
    // interior queries, over a window straddling the morning rush.
    for (nx, ny) in [(3usize, 3usize), (4, 3), (5, 4)] {
        for class in [RoadClass::LocalOutside, RoadClass::InboundHighway] {
            let net = grid(nx, ny, 0.8, class).unwrap();
            let n = (nx * ny) as u32;
            let corner = QuerySpec::new(
                NodeId(0),
                NodeId(n - 1),
                Interval::of(hm(6, 30), hm(8, 15)),
                DayCategory::WORKDAY,
            );
            assert_same_answer(&net, &corner);
        }
    }
}

#[test]
fn grid_queries_crossing_midnight_match_reference() {
    // The cache splices its stored function across the day boundary;
    // the reference integrates straight through. Both must agree.
    let net = grid(4, 4, 1.0, RoadClass::LocalBoston).unwrap();
    let q = QuerySpec::new(
        NodeId(0),
        NodeId(15),
        Interval::of(hm(23, 30), hm(24, 45)),
        DayCategory::WORKDAY,
    );
    assert_same_answer(&net, &q);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10,
        ..ProptestConfig::default()
    })]

    #[test]
    fn random_grid_queries_match_reference(
        seed in 0u64..1_000,
        nx in 3usize..6,
        ny in 3usize..5,
        lo_frac in 0.0f64..0.9,
        len in 15.0f64..120.0,
    ) {
        // Randomize the query (endpoints, window) on a grid whose
        // spacing also varies with the seed.
        let spacing = 0.5 + 0.1 * ((seed % 7) as f64);
        let class = if seed % 2 == 0 { RoadClass::LocalOutside } else { RoadClass::OutboundHighway };
        let net = grid(nx, ny, spacing, class).unwrap();
        let n = (nx * ny) as u64;
        let src = NodeId((seed % n) as u32);
        let dst = NodeId(((seed / n + n / 2) % n) as u32);
        prop_assume!(src != dst);
        let lo = hm(5, 30) + lo_frac * 300.0;
        let q = QuerySpec::new(src, dst, Interval::of(lo, lo + len), DayCategory::WORKDAY);
        assert_same_answer(&net, &q);
    }

    #[test]
    fn random_geometric_queries_match_reference(
        seed in 0u64..1_000,
        src in 0u32..30,
        dst in 0u32..30,
    ) {
        prop_assume!(src != dst);
        let net = random_geometric(30, 2.0, 3, seed).unwrap();
        let q = QuerySpec::new(
            NodeId(src),
            NodeId(dst),
            Interval::of(hm(6, 45), hm(8, 0)),
            DayCategory::WORKDAY,
        );
        assert_same_answer(&net, &q);
    }
}
