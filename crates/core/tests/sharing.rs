//! Shared-storage equivalence: the answer's lower border is assembled
//! by merging the answer paths' `Arc<Pwl>` travel functions (refcount
//! bumps, no deep copies). These tests pin the contract that makes the
//! sharing safe: rebuilding the border from *deep clones* of those
//! functions — fresh allocations, a cold scratch, the unpooled
//! `merge_min` — must reproduce the engine's border **bit for bit**
//! (same breakpoints, same coefficients, same tags). Travel functions
//! are immutable once built, so storage (owned vs shared) can never be
//! observable; this is the executable form of that argument.

use allfp::{AllFpAnswer, Engine, EngineConfig, QuerySpec};
use pwl::time::hm;
use pwl::{Envelope, Interval, Pwl};
use roadnet::generators::{grid, random_geometric};
use roadnet::{NodeId, RoadNetwork};
use traffic::{DayCategory, RoadClass};

/// Rebuild the answer's lower border from deep clones of the answer
/// paths' travel functions, merged in identification order — the same
/// order `assemble_answer` uses, but with every function value-cloned
/// out of its `Arc` first.
fn rebuild_border_deep(answer: &AllFpAnswer) -> Envelope<usize> {
    let deep: Vec<Pwl> = answer.paths.iter().map(|p| (*p.travel).clone()).collect();
    let mut border: Option<Envelope<usize>> = None;
    for (i, f) in deep.into_iter().enumerate() {
        match &mut border {
            None => border = Some(Envelope::new(f, i)),
            Some(b) => b.merge_min(&f, i).expect("deep-clone merge"),
        }
    }
    border.expect("answer has at least one path")
}

fn assert_border_bit_identical(net: &RoadNetwork, q: &QuerySpec) {
    let engine = Engine::new(net, EngineConfig::default());
    let answer = engine.all_fastest_paths(q).expect("allFP answer");
    let rebuilt = rebuild_border_deep(&answer);

    let shared = answer.lower_border.as_pwl();
    let deep = rebuilt.as_pwl();
    assert_eq!(shared.breakpoints(), deep.breakpoints(), "border knots");
    assert_eq!(shared.linears(), deep.linears(), "border coefficients");
    assert_eq!(
        answer.lower_border.partition(),
        rebuilt.partition(),
        "border tags"
    );
}

#[test]
fn geometric_morning_rush_border_survives_deep_clone() {
    // Fig. 9-style workload: random geometric networks, morning-rush
    // window, a spread of source/target pairs.
    for seed in [0u64, 1, 7, 42] {
        let net = random_geometric(40, 2.0, 3, seed).unwrap();
        for (src, dst) in [(0u32, 39u32), (3, 29), (11, 5)] {
            let q = QuerySpec::new(
                NodeId(src),
                NodeId(dst),
                Interval::of(hm(6, 30), hm(9, 0)),
                DayCategory::WORKDAY,
            );
            assert_border_bit_identical(&net, &q);
        }
    }
}

#[test]
fn grid_border_survives_deep_clone() {
    // Grids force ties (equal-length L-routes), so the border merge's
    // tie-breaking is exercised; sharing must not perturb it.
    let net = grid(5, 4, 0.8, RoadClass::LocalOutside).unwrap();
    let q = QuerySpec::new(
        NodeId(0),
        NodeId(19),
        Interval::of(hm(6, 45), hm(8, 30)),
        DayCategory::WORKDAY,
    );
    assert_border_bit_identical(&net, &q);
}
