//! End-to-end fault tolerance: the query engine over a CCAM store
//! with deterministic faults injected below it.
//!
//! The storage stack under test is the full production layering
//!
//! ```text
//! CcamStore → BufferPool (bounded retry) → ChecksummedStore
//!           → FaultInjectingStore (seeded schedule) → MemStore
//! ```
//!
//! and the properties asserted are the ISSUE's acceptance criteria:
//!
//! * under seeded transient-read faults, a concurrent batch completes
//!   **every** query with answers identical to a fault-free serial run
//!   (the retry layer absorbs the faults; nothing leaks upward);
//! * the same seed replays the same fault schedule byte-for-byte;
//! * a bit-flipped page is detected as `Corruption` and surfaces as a
//!   typed [`EngineError::Storage`] — flipped bytes are never served
//!   as route data;
//! * an exhausted per-query budget yields a [`QueryOutcome::Degraded`]
//!   answer whose constant-speed fallback is a real, drivable path;
//! * a query that panics mid-search fails in its own slot while its
//!   batch siblings complete exactly;
//! * a pre-cancelled batch reports `Cancelled` for every slot.

use std::sync::Arc;

use allfp::baseline::evaluate_path;
use allfp::{
    CancelToken, DegradedReason, Engine, EngineConfig, EngineError, QueryBudget, QueryOutcome,
    QuerySpec,
};
use ccam::{
    BlockStore, CcamStore, ChecksummedStore, FaultInjectingStore, FaultPlan, MemStore,
    PlacementPolicy, DEFAULT_PAGE_SIZE,
};
use pwl::time::hm;
use pwl::Interval;
use roadnet::generators::{grid, random_geometric};
use roadnet::{NetworkSource, NodeId, RoadNetwork, StorageFaultKind};
use traffic::{DayCategory, RoadClass};

/// Deterministic 64-bit LCG (same constants as `MMIX`).
fn lcg(x: &mut u64) -> u64 {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *x
}

/// The production storage layering with a fault schedule at the
/// bottom: returns the raw store, the injector (for its event log),
/// and the checksummed top of the stack.
fn faulty_stack(plan: FaultPlan) -> (Arc<MemStore>, Arc<FaultInjectingStore>, Arc<dyn BlockStore>) {
    let raw = Arc::new(MemStore::new(DEFAULT_PAGE_SIZE));
    let injected = Arc::new(FaultInjectingStore::new(
        Arc::clone(&raw) as Arc<dyn BlockStore>,
        plan,
    ));
    let top: Arc<dyn BlockStore> = Arc::new(ChecksummedStore::new(
        Arc::clone(&injected) as Arc<dyn BlockStore>
    ));
    (raw, injected, top)
}

fn sample_queries(net: &RoadNetwork, n: usize, seed: u64) -> Vec<QuerySpec> {
    let nodes = net.n_nodes() as u64;
    let mut x = seed ^ 0xFA17_FA17;
    (0..n)
        .map(|_| {
            let s = NodeId((lcg(&mut x) % nodes) as u32);
            let e = loop {
                let c = NodeId((lcg(&mut x) % nodes) as u32);
                if c != s {
                    break c;
                }
            };
            let lo = hm(6, 30) + (lcg(&mut x) % 120) as f64;
            QuerySpec::new(s, e, Interval::of(lo, lo + 25.0), DayCategory::WORKDAY)
        })
        .collect()
}

/// Batch answers over a store with scheduled transient read faults
/// must be identical to a fault-free serial run: the buffer pool's
/// bounded retry absorbs every injected fault and no query fails.
#[test]
fn batch_over_faulty_store_matches_fault_free_serial() {
    let net = random_geometric(100, 4.0, 3, 9).unwrap();
    // every-5th read fails transiently (period >= 2, so a single retry
    // always lands — see the FaultInjectingStore schedule model)
    let (_raw, injected, top) = faulty_stack(FaultPlan::quiet(21).with_transient_reads(5));
    let disk = CcamStore::build(&net, top, PlacementPolicy::ConnectivityClustered, 64).unwrap();
    disk.clear_cache().unwrap();

    let queries = sample_queries(&net, 12, 77);
    let oracle = Engine::new(&net, EngineConfig::default());
    let serial: Vec<_> = queries
        .iter()
        .map(|q| oracle.all_fastest_paths(q))
        .collect();

    let engine = Engine::new(&disk, EngineConfig::default());
    let (batch, stats) = engine.run_batch_with_threads(&queries, 4);
    assert_eq!(stats.total_queries(), queries.len());

    for (i, (s, b)) in serial.iter().zip(batch.iter()).enumerate() {
        match (s, b) {
            (Ok(s), Ok(b)) => {
                assert_eq!(s.partition.len(), b.partition.len(), "query {i}");
                for (x, y) in s.partition.iter().zip(b.partition.iter()) {
                    assert!(x.0.approx_eq(&y.0), "query {i}");
                    assert_eq!(s.paths[x.1].nodes, b.paths[y.1].nodes, "query {i}");
                }
            }
            // only structural failures (unreachable pair) may agree to
            // fail; a storage fault must never surface
            (
                Err(allfp::AllFpError::Unreachable { .. }),
                Err(allfp::AllFpError::Unreachable { .. }),
            ) => {}
            (s, b) => panic!(
                "query {i}: serial {:?} vs faulty batch {:?}",
                s.as_ref().map(|_| "ok"),
                b.as_ref().map(|_| "ok"),
            ),
        }
    }

    // faults really fired, and the pool really retried through them
    assert!(injected.n_faults() > 0, "schedule never fired");
    let io = disk.pool().store().io_stats();
    assert!(io.retries() > 0, "no retries recorded");
    assert_eq!(io.corruptions(), 0, "transient faults must not corrupt");
}

/// The same seed over the same workload replays the identical fault
/// schedule — event for event — which is what makes a faulty failure
/// reproducible offline.
#[test]
fn same_seed_replays_identical_fault_schedule() {
    let net = grid(8, 8, 0.25, RoadClass::LocalBoston).unwrap();
    let queries = sample_queries(&net, 6, 3);

    let run = |seed: u64| {
        let (_raw, injected, top) = faulty_stack(FaultPlan::quiet(seed).with_transient_reads(4));
        let disk = CcamStore::build(&net, top, PlacementPolicy::HilbertPacked, 32).unwrap();
        disk.clear_cache().unwrap();
        let engine = Engine::new(&disk, EngineConfig::default());
        // serial, so the physical-operation order is deterministic
        for q in &queries {
            let _ = engine.all_fastest_paths(q);
        }
        injected.events()
    };

    let a = run(5);
    assert!(!a.is_empty(), "schedule never fired");
    assert_eq!(a, run(5), "same seed must replay the identical log");
    assert_ne!(a, run(6), "a different seed must phase-shift the schedule");
}

/// A bit flipped beneath the checksum layer is detected on the next
/// fault-in and surfaces as a typed `Corruption` storage error — the
/// engine never sees (let alone routes on) the damaged bytes.
#[test]
fn bit_flipped_page_is_detected_never_served() {
    let net = grid(6, 6, 0.3, RoadClass::LocalOutside).unwrap();
    let raw: Arc<dyn BlockStore> = Arc::new(MemStore::new(DEFAULT_PAGE_SIZE));
    let top: Arc<dyn BlockStore> = Arc::new(ChecksummedStore::new(Arc::clone(&raw)));
    let disk = CcamStore::build(&net, top, PlacementPolicy::ConnectivityClustered, 64).unwrap();

    let queries = sample_queries(&net, 4, 13);
    let engine = Engine::new(&disk, EngineConfig::default());
    // sanity: the pristine store answers exactly
    for q in &queries {
        assert!(matches!(engine.run_robust(q), Ok(QueryOutcome::Exact(_))));
    }

    // flip one payload bit in every page, bypassing the checksum layer
    // (modelling at-rest media corruption), then drop the clean cache
    let page_size = raw.page_size();
    for id in 0..raw.n_pages() {
        let mut page = vec![0u8; page_size];
        raw.read_page(id, &mut page).unwrap();
        page[page_size / 2] ^= 0x10;
        raw.write_page(id, &page).unwrap();
    }
    disk.clear_cache().unwrap();

    for q in &queries {
        match engine.run_robust(q) {
            Err(EngineError::Storage { kind, .. }) => {
                assert_eq!(kind, StorageFaultKind::Corruption)
            }
            other => panic!("corrupt store served an answer: {other:?}"),
        }
    }
    // batch slots report the same typed failure; none succeed
    let (results, _) = engine.run_batch_robust(&queries, 2, &CancelToken::new());
    for r in &results {
        assert!(
            matches!(
                r,
                Err(EngineError::Storage {
                    kind: StorageFaultKind::Corruption,
                    ..
                })
            ),
            "slot over corrupt store: {r:?}"
        );
    }
    assert!(
        disk.pool().store().io_stats().corruptions() > 0,
        "checksum layer never counted the corruption"
    );
}

/// Exhausting a per-query expansion budget over the disk store yields
/// a `Degraded` answer whose constant-speed fallback is a real path
/// that drives from source to target.
#[test]
fn exhausted_budget_over_disk_store_degrades_with_fallback() {
    let net = grid(5, 5, 0.3, RoadClass::LocalOutside).unwrap();
    let (_raw, _injected, top) = faulty_stack(FaultPlan::quiet(17).with_transient_reads(6));
    let disk = CcamStore::build(&net, top, PlacementPolicy::ConnectivityClustered, 64).unwrap();
    let engine = Engine::new(&disk, EngineConfig::default());

    let q = QuerySpec::new(
        NodeId(0),
        NodeId(24),
        Interval::of(hm(7, 0), hm(7, 30)),
        DayCategory::WORKDAY,
    )
    .with_budget(QueryBudget::unlimited().with_max_expansions(2));

    match engine.run_robust(&q).unwrap() {
        QueryOutcome::Degraded(d) => {
            assert_eq!(d.reason, DegradedReason::ExpansionsExhausted);
            let nodes = &d.fallback.nodes;
            assert_eq!(nodes.first(), Some(&q.source));
            assert_eq!(nodes.last(), Some(&q.target));
            // the fallback's travel function matches actually driving
            // the route on the (time-dependent) network
            for l in [q.interval.lo(), q.interval.mid(), q.interval.hi()] {
                let driven = evaluate_path(&net, nodes, l, q.category).unwrap();
                let claimed = d.fallback.travel.eval_clamped(l);
                assert!(
                    (driven - claimed).abs() <= 1e-6 * (1.0 + driven),
                    "fallback claims {claimed} but drives {driven} at l={l}"
                );
            }
            assert!(d.fallback_travel_minutes > 0.0);
        }
        other => panic!("expected a degraded answer, got {other:?}"),
    }
}

/// A `NetworkSource` whose adjacency read panics for one poisoned
/// node. The node has no incoming edges, so only a search *starting*
/// there ever expands it — sibling queries are deterministic.
struct PanicSource<'a> {
    inner: &'a RoadNetwork,
    poison: NodeId,
}

impl NetworkSource for PanicSource<'_> {
    fn n_nodes(&self) -> usize {
        NetworkSource::n_nodes(self.inner)
    }

    fn find_node(&self, node: NodeId) -> roadnet::Result<roadnet::Point> {
        self.inner.find_node(node)
    }

    fn successors(&self, node: NodeId) -> roadnet::Result<Vec<roadnet::Edge>> {
        assert!(node != self.poison, "poisoned adjacency read");
        self.inner.successors(node)
    }

    fn pattern(&self, id: roadnet::PatternId) -> roadnet::Result<&traffic::CapeCodPattern> {
        self.inner.pattern(id)
    }

    fn max_speed(&self) -> f64 {
        NetworkSource::max_speed(self.inner)
    }
}

/// A deliberately panicking query errors in its own batch slot while
/// every sibling completes with the exact answer.
#[test]
fn panicking_query_fails_in_its_own_slot() {
    let mut net = grid(4, 4, 0.3, RoadClass::LocalOutside).unwrap();
    // poison node: outgoing edge only, so no sibling search can reach
    // (and therefore never expands) it
    let poison = net.add_node(2.0, 2.0).unwrap();
    net.add_class_edge(poison, NodeId(15), 2.0, RoadClass::LocalOutside)
        .unwrap();

    let iv = Interval::of(hm(7, 0), hm(7, 20));
    let queries = vec![
        QuerySpec::new(NodeId(0), NodeId(15), iv, DayCategory::WORKDAY),
        QuerySpec::new(NodeId(3), NodeId(12), iv, DayCategory::WORKDAY),
        QuerySpec::new(poison, NodeId(0), iv, DayCategory::WORKDAY),
        QuerySpec::new(NodeId(5), NodeId(10), iv, DayCategory::WORKDAY),
        QuerySpec::new(NodeId(12), NodeId(3), iv, DayCategory::WORKDAY),
    ];

    let src = PanicSource {
        inner: &net,
        poison,
    };
    let engine = Engine::new(&src, EngineConfig::default());
    let clean = Engine::new(&net, EngineConfig::default());

    let (results, stats) = engine.run_batch_robust(&queries, 3, &CancelToken::new());
    assert_eq!(stats.total_queries(), queries.len());
    for (i, (q, r)) in queries.iter().zip(results.iter()).enumerate() {
        if q.source == poison {
            assert!(
                matches!(r, Err(EngineError::Panicked(_))),
                "poisoned slot {i}: {r:?}"
            );
            continue;
        }
        let got = match r {
            Ok(QueryOutcome::Exact(a)) => a,
            other => panic!("sibling slot {i} did not complete exactly: {other:?}"),
        };
        let want = clean.all_fastest_paths(q).unwrap();
        assert_eq!(want.partition.len(), got.partition.len(), "slot {i}");
        for (x, y) in want.partition.iter().zip(got.partition.iter()) {
            assert!(x.0.approx_eq(&y.0), "slot {i}");
            assert_eq!(want.paths[x.1].nodes, got.paths[y.1].nodes, "slot {i}");
        }
    }
}

/// Cancelling before the batch starts cancels every slot — over the
/// real disk stack, not just the in-memory engine.
#[test]
fn pre_cancelled_batch_cancels_every_slot_over_disk() {
    let net = grid(5, 5, 0.3, RoadClass::LocalBoston).unwrap();
    let (_raw, _injected, top) = faulty_stack(FaultPlan::quiet(2).with_transient_reads(7));
    let disk = CcamStore::build(&net, top, PlacementPolicy::HilbertPacked, 32).unwrap();
    let engine = Engine::new(&disk, EngineConfig::default());

    let queries = sample_queries(&net, 6, 99);
    let token = CancelToken::new();
    token.cancel();
    let (results, stats) = engine.run_batch_robust(&queries, 3, &token);
    assert_eq!(stats.total_queries(), queries.len());
    for r in &results {
        assert!(matches!(r, Err(EngineError::Cancelled)), "{r:?}");
    }
}

/// The batch driver preserves fault-replay determinism: pushing the
/// same seeded workload through [`Engine::run_batch_robust`] (width 1,
/// so the physical-operation order is well defined) produces a
/// bit-identical [`ccam::FaultEvent`] log on every run, and every
/// slot still resolves.
#[test]
fn run_batch_robust_replays_identical_fault_log() {
    let net = grid(8, 8, 0.25, RoadClass::LocalBoston).unwrap();
    let queries = sample_queries(&net, 8, 5);

    let run = || {
        let (_raw, injected, top) = faulty_stack(FaultPlan::quiet(31).with_transient_reads(4));
        let disk = CcamStore::build(&net, top, PlacementPolicy::ConnectivityClustered, 32).unwrap();
        disk.clear_cache().unwrap();
        let engine = Engine::new(&disk, EngineConfig::default());
        let (results, _) = engine.run_batch_robust(&queries, 1, &CancelToken::new());
        assert_eq!(results.len(), queries.len());
        for (k, r) in results.iter().enumerate() {
            assert!(
                matches!(r, Ok(QueryOutcome::Exact(_))),
                "slot {k} did not resolve exactly: {r:?}"
            );
        }
        injected.events()
    };

    let a = run();
    assert!(!a.is_empty(), "schedule never fired");
    assert_eq!(a, run(), "batch replay must be bit-identical");
}
