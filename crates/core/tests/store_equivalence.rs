//! Golden store-equivalence suite for the continental pipeline:
//!
//! * the parallel bulk builder must produce **byte-identical** stores
//!   at every thread count (1, 2, 4);
//! * query answers served through `MemStore`, `FileStore`, and
//!   `MmapStore` must be **bit-identical** to each other and to the
//!   in-memory network (fingerprinted through `Debug`, which prints
//!   shortest-roundtrip floats — equal strings means equal bits).
//!
//! A scaled-down continental tier keeps the suite fast; the metro-huge
//! bench (`fpbench::metro_huge`) re-runs the same checks at the smoke
//! tier and measures the million-node tier.

use std::sync::Arc;

use allfp::{Engine, EngineConfig, QuerySpec};
use ccam::{
    build_bulk, BlockStore, BulkBuildConfig, CcamStore, FileStore, MemStore, MmapStore,
    DEFAULT_PAGE_SIZE,
};
use pwl::time::hm;
use pwl::Interval;
use roadnet::generators::{continental, ContinentalConfig, ContinentalNet};
use roadnet::RoadNetwork;
use traffic::DayCategory;

/// A 900-node continental tier: big enough to need many pages and an
/// index of height > 1, small enough for a debug-build test.
fn tiny_config() -> ContinentalConfig {
    ContinentalConfig {
        cells_x: 3,
        cells_y: 3,
        cell_w: 10,
        cell_h: 10,
        ..ContinentalConfig::smoke(0xC0FFEE)
    }
}

/// The fig9-style workload on the materialized twin of the tier.
fn workload(net: &RoadNetwork) -> Vec<QuerySpec> {
    let interval = Interval::of(hm(7, 0), hm(10, 0));
    roadnet::workload::sample_pairs(net, 6, 0.3, 1.0, 0xF19)
        .expect("sampling succeeds")
        .iter()
        .map(|p| QuerySpec::new(p.source, p.target, interval, DayCategory::WORKDAY))
        .collect()
}

/// Bit-level fingerprint of an answer: interval partition plus every
/// path (nodes and travel-time function), via shortest-roundtrip
/// float formatting.
fn fingerprint(a: &allfp::AllFpAnswer) -> String {
    format!("{:?}|{:?}", a.partition, a.paths)
}

/// Every page of the store, read through the public interface.
fn page_images(store: &dyn BlockStore) -> Vec<Vec<u8>> {
    let mut buf = vec![0u8; store.page_size()];
    (0..store.n_pages())
        .map(|id| {
            store.read_page(id, &mut buf).expect("page reads");
            buf.clone()
        })
        .collect()
}

#[test]
fn bulk_build_is_byte_identical_across_thread_counts() {
    let lazy = ContinentalNet::new(tiny_config()).expect("config is valid");
    let mut images: Vec<Vec<Vec<u8>>> = Vec::new();
    for threads in [1usize, 2, 4] {
        let store = Arc::new(MemStore::new(DEFAULT_PAGE_SIZE));
        let cfg = BulkBuildConfig {
            threads,
            ..BulkBuildConfig::default()
        };
        let (_, stats) =
            build_bulk(&lazy, lazy.patterns(), Arc::clone(&store) as _, &cfg).expect("bulk builds");
        assert_eq!(stats.n_nodes, tiny_config().n_nodes());
        images.push(page_images(store.as_ref()));
    }
    assert_eq!(images[0], images[1], "2-thread build diverged from serial");
    assert_eq!(images[0], images[2], "4-thread build diverged from serial");
}

#[test]
fn answers_bit_identical_across_mem_file_and_mmap_stores() {
    let cfg = tiny_config();
    let lazy = ContinentalNet::new(cfg.clone()).expect("config is valid");
    let net = continental(&cfg).expect("materializes");
    let queries = workload(&net);
    assert!(!queries.is_empty());

    // Reference: the in-memory network.
    let mem_engine = Engine::new(&net, EngineConfig::default());
    let reference: Vec<String> = queries
        .iter()
        .map(|q| fingerprint(&mem_engine.all_fastest_paths(q).expect("query succeeds")))
        .collect();

    let dir = std::env::temp_dir().join(format!("fp-store-equiv-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("tier.ccam");

    // Build once through the bulk pipeline into a FileStore...
    let file = Arc::new(FileStore::create(&path, DEFAULT_PAGE_SIZE).expect("file store"));
    let bulk_cfg = BulkBuildConfig::default();
    let (_, _) = build_bulk(&lazy, lazy.patterns(), file as _, &bulk_cfg).expect("bulk builds");

    // ...and once into a MemStore (the builder is deterministic, so
    // the three stores below all serve the same bytes).
    let mem_store = Arc::new(MemStore::new(DEFAULT_PAGE_SIZE));
    let (mem_ccam, _) =
        build_bulk(&lazy, lazy.patterns(), mem_store as _, &bulk_cfg).expect("bulk builds");

    let file_ro = Arc::new(FileStore::open(&path, DEFAULT_PAGE_SIZE).expect("file reopens"));
    let file_ccam = CcamStore::open(file_ro, 64).expect("ccam over file");

    let mmap = Arc::new(MmapStore::open(&path, DEFAULT_PAGE_SIZE).expect("mmap opens"));
    let mmap_stats = Arc::clone(&mmap);
    // 64 frames over hundreds of pages: eviction and refaulting are
    // exercised, not just the first touch.
    let mmap_ccam = CcamStore::open(mmap, 64).expect("ccam over mmap");

    for (label, disk) in [
        ("MemStore", &mem_ccam),
        ("FileStore", &file_ccam),
        ("MmapStore", &mmap_ccam),
    ] {
        let engine = Engine::new(disk, EngineConfig::default());
        for (q, want) in queries.iter().zip(reference.iter()) {
            let got = fingerprint(&engine.all_fastest_paths(q).expect("query succeeds"));
            assert_eq!(&got, want, "{label} answer diverged from in-memory network");
        }
    }

    // The mmap path actually served the workload: first-touch faults
    // were counted, and the store refuses writes by construction.
    assert!(
        mmap_stats.io_stats().mmap_faults() > 0,
        "no mmap faults counted — the mmap store was never exercised"
    );

    std::fs::remove_dir_all(&dir).ok();
}
