//! The update-storm chaos harness: the `QueryService` serving through
//! an epoch-pinned `LiveBackend` while a seeded **delta stream**
//! repoints speed patterns mid-flight, composed with the PR 5 2×
//! overload replay and a PR 3-style fault window (per-query budget
//! storms that trip the robust degradation path), all driven in
//! virtual time so every run replays bit-identically.
//!
//! The scenario (`run_storm_sim`): a grid network published through an
//! `EpochManager`; a seeded open-loop arrival schedule offers ~2× the
//! service capacity; eight seeded `TrafficDelta`s land at fixed
//! virtual times, each atomically swapping in a new epoch while
//! admitted queries stay pinned to the epoch they were stamped with;
//! over the middle fifth of the window every submission carries a
//! tiny expansion budget, so the degradation machinery fires under
//! the storm exactly as storage faults do in the PR 5 harness.
//!
//! Invariants asserted (the ISSUE's acceptance criteria):
//!
//! * every **answered** query is bit-identical to a from-scratch
//!   engine built over its pinned epoch's network — no torn reads,
//!   no answer computed from a mix of epochs;
//! * no epoch is freed while referenced: after every delta, every
//!   in-flight ticket's stamped epoch still resolves through the
//!   manager;
//! * superseded epochs *do* retire once their last pin drains
//!   (`epochs_retired == updates_applied`, `epoch_retire_lag == 0`
//!   after the drain);
//! * `ServiceStats` reconciles exactly, including the live-update
//!   identities (`epochs_published == updates_applied + 1`);
//! * the shared travel-function cache's counters reconcile
//!   (`resident == inserted − retired` never goes negative);
//! * the whole run — outcomes, stats, answers, apply reports —
//!   replays bit-exact from the seed.

use std::collections::HashMap;
use std::sync::Arc;

use allfp::service::{
    ArrivalSchedule, DrainMode, ManualClock, Priority, QueryService, ServiceClock, ServiceConfig,
    ServiceOutcome, ServiceStats, Submission,
};
use allfp::{
    AllFpAnswer, CacheCounters, DegradedReason, Engine, EngineConfig, EpochId, EpochManager,
    LiveBackend, QueryBudget, QuerySpec,
};
use pwl::time::hm;
use pwl::Interval;
use roadnet::generators::grid;
use roadnet::{NodeId, RoadNetwork};
use traffic::{DayCategory, RoadClass};

/// Deterministic 64-bit LCG (same constants as `MMIX`).
fn lcg(x: &mut u64) -> u64 {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *x
}

fn sample_specs(net: &RoadNetwork, n: usize, seed: u64) -> Vec<QuerySpec> {
    let nodes = net.n_nodes() as u64;
    let mut x = seed ^ 0x0EE2_10AD;
    (0..n)
        .map(|_| {
            let s = NodeId((lcg(&mut x) % nodes) as u32);
            let e = loop {
                let c = NodeId((lcg(&mut x) % nodes) as u32);
                if c != s {
                    break c;
                }
            };
            let lo = hm(6, 30) + (lcg(&mut x) % 90) as f64;
            QuerySpec::new(s, e, Interval::of(lo, lo + 20.0), DayCategory::WORKDAY)
        })
        .collect()
}

/// A bit-exact signature of an answer: partition bounds (as raw f64
/// bits) plus the node sequence of each sub-interval's fastest path.
type AnswerSig = Vec<(u64, u64, Vec<usize>)>;

fn answer_sig(a: &AllFpAnswer) -> AnswerSig {
    a.partition
        .iter()
        .map(|(iv, pi)| {
            (
                iv.lo().to_bits(),
                iv.hi().to_bits(),
                a.paths[*pi].nodes.iter().map(|n| n.index()).collect(),
            )
        })
        .collect()
}

/// Everything one storm run produced, in a `PartialEq` shape so two
/// runs can be compared wholesale.
#[derive(Debug, PartialEq)]
struct StormResult {
    /// `(ticket, kind[:reason])` in completion order.
    terminal: Vec<(u64, String)>,
    /// `(submission index, rejection reason)` in submission order.
    rejected: Vec<(usize, String)>,
    /// `(ticket, spec index, pinned epoch, bit-exact signature)` for
    /// every `Answered` outcome.
    answered: Vec<(u64, usize, u64, AnswerSig)>,
    /// One debug line per applied delta (epoch ids, delta report,
    /// sweep counters) — pins the apply path into the replay check.
    apply_log: Vec<String>,
    stats: ServiceStats,
    cache: CacheCounters,
    executed_units: u64,
    elapsed: u64,
    n_submissions: usize,
    n_deltas: usize,
    queue_capacity: usize,
}

const STORM_SUBMISSIONS: usize = 120;
const STORM_DELTAS: usize = 8;

/// One full update-storm scenario in virtual time. Pure function of
/// `seed`. Also checks the mid-run pin-safety invariant (every
/// in-flight ticket's epoch survives every swap) inline, since it
/// cannot be reconstructed from the final result.
fn run_storm_sim(seed: u64) -> StormResult {
    let net = grid(8, 8, 0.3, RoadClass::LocalBoston).unwrap();
    let specs = sample_specs(&net, 12, seed);

    // Calibrate per-spec costs (work units = expansions) on a plain
    // engine over the seed epoch; identical data ⇒ identical costs
    // through the live backend.
    let costs: Vec<u64> = {
        let calib = Engine::new(&net, EngineConfig::default());
        specs
            .iter()
            .map(|q| {
                calib
                    .all_fastest_paths(q)
                    .unwrap()
                    .stats
                    .expanded_paths
                    .max(1) as u64
            })
            .collect()
    };
    let mean_cost = (costs.iter().sum::<u64>() / costs.len() as u64).max(1);

    let mgr = EpochManager::new(net, EngineConfig::default()).unwrap();
    let live = LiveBackend::new(&mgr);
    let clock = ManualClock::new();
    let queue_capacity = 12;
    let config = ServiceConfig {
        queue_capacity,
        shed_expired: true,
        default_cost: mean_cost,
        initial_units_per_cost: 1.0,
        ..ServiceConfig::default()
    };
    let svc = QueryService::new(&live, &clock, config).with_epochs(&mgr);

    // 2× overload, exactly as the PR 5 harness runs it.
    let schedule = ArrivalSchedule::open_loop(
        seed ^ 0xA11F_0AD5,
        STORM_SUBMISSIONS,
        (mean_cost / 2).max(1),
    );
    let horizon = *schedule.times().last().unwrap();
    // Budget-fault storm over the middle fifth of the arrival window.
    let storm = (horizon * 2 / 5, horizon * 3 / 5);
    // Delta stream: eight updates spread evenly across the window.
    let delta_times: Vec<u64> = (1..=STORM_DELTAS as u64)
        .map(|k| k * horizon / (STORM_DELTAS as u64 + 1))
        .collect();

    // Retain each epoch's network for the from-scratch oracle. (An
    // `Arc<RoadNetwork>` clone does *not* pin the epoch itself — the
    // retire machinery still runs.)
    let mut epoch_nets: HashMap<u64, Arc<RoadNetwork>> = HashMap::new();
    epoch_nets.insert(mgr.current_id().0, Arc::clone(mgr.current().network()));

    let mut apply_log = Vec::new();
    let mut ticket_spec: HashMap<u64, (usize, u64)> = HashMap::new();
    let mut in_flight: HashMap<u64, u64> = HashMap::new();
    let mut outcomes: Vec<(u64, ServiceOutcome)> = Vec::new();
    let mut rejected = Vec::new();
    let mut executed_units = 0u64;
    let mut next = 0usize;
    let mut next_delta = 0usize;

    let drain = |acc: &mut Vec<(u64, ServiceOutcome)>, in_flight: &mut HashMap<u64, u64>| {
        for (id, out) in svc.take_outcomes() {
            in_flight.remove(&id);
            acc.push((id, out));
        }
    };

    loop {
        let now = clock.now();
        if next_delta < delta_times.len() && delta_times[next_delta] <= now {
            let delta = mgr
                .current()
                .network()
                .seeded_delta(seed ^ (next_delta as u64), 6, next_delta as u64 + 1)
                .unwrap();
            let rep = mgr.apply_delta(&delta).unwrap();
            epoch_nets.insert(rep.epoch.0, Arc::clone(mgr.current().network()));
            apply_log.push(format!("{rep:?}"));
            next_delta += 1;
            // Pin safety: the swap must not have freed any epoch a
            // queued or running ticket is still pinned to.
            drain(&mut outcomes, &mut in_flight);
            for (&ticket, &ep) in &in_flight {
                assert!(
                    mgr.pin(Some(EpochId(ep))).is_some(),
                    "epoch {ep} freed while ticket {ticket} was still pinned to it"
                );
            }
            continue;
        }
        if next < schedule.len() && schedule.times()[next] <= now {
            let idx = next % specs.len();
            let mut spec = specs[idx].clone();
            if (storm.0..storm.1).contains(&now) {
                // Fault window: a near-zero budget forces the robust
                // degradation path, like the PR 5 storage storm does.
                spec = spec.with_budget(QueryBudget::unlimited().with_max_expansions(3));
            }
            let sub = Submission::new(spec)
                .with_class(if next % 4 == 3 {
                    Priority::Batch
                } else {
                    Priority::Interactive
                })
                .with_deadline(now + 6 * mean_cost)
                .with_cost_hint(costs[idx]);
            let stamped = mgr.current_id().0;
            match svc.submit(sub) {
                Ok(id) => {
                    ticket_spec.insert(id, (idx, stamped));
                    in_flight.insert(id, stamped);
                }
                Err(o) => rejected.push((next, format!("{:?}", o.reason))),
            }
            next += 1;
            continue;
        }
        match svc.step() {
            Some(rep) => {
                executed_units += rep.cost;
                clock.advance(rep.cost);
                drain(&mut outcomes, &mut in_flight);
            }
            None => {
                if next >= schedule.len() && next_delta >= delta_times.len() {
                    break;
                }
                // Idle: jump to the next event (arrival or delta).
                let mut jump = u64::MAX;
                if next < schedule.len() {
                    jump = jump.min(schedule.times()[next]);
                }
                if next_delta < delta_times.len() {
                    jump = jump.min(delta_times[next_delta]);
                }
                clock.set(jump);
            }
        }
    }
    svc.begin_drain(DrainMode::Finish);
    while let Some(rep) = svc.step() {
        executed_units += rep.cost;
        clock.advance(rep.cost);
    }
    drain(&mut outcomes, &mut in_flight);
    assert!(in_flight.is_empty(), "tickets without terminal outcomes");

    let stats = svc.stats();
    let mut terminal = Vec::with_capacity(outcomes.len());
    let mut answered = Vec::new();
    for (id, out) in &outcomes {
        let label = match out {
            ServiceOutcome::Degraded(d) => format!("degraded:{:?}", d.reason),
            ServiceOutcome::Cancelled(r) => format!("cancelled:{r:?}"),
            other => other.kind().to_string(),
        };
        terminal.push((*id, label));
        if let ServiceOutcome::Answered(a) = out {
            let (idx, epoch) = ticket_spec[id];
            answered.push((*id, idx, epoch, answer_sig(a)));
        }
    }

    // From-scratch oracle: every answered ticket, re-answered by a
    // fresh engine (fresh cache, fresh estimator) built over exactly
    // the network its pinned epoch published. Bit-identical or bust.
    for (id, idx, epoch, sig) in &answered {
        let net = &epoch_nets[epoch];
        let fresh = Engine::new(net.as_ref(), EngineConfig::default());
        let want = answer_sig(&fresh.all_fastest_paths(&specs[*idx]).unwrap());
        assert_eq!(
            sig, &want,
            "ticket {id} diverged from a from-scratch build of its pinned epoch {epoch}"
        );
    }

    StormResult {
        terminal,
        rejected,
        answered,
        apply_log,
        stats,
        cache: mgr.cache().counters(),
        executed_units,
        elapsed: clock.now(),
        n_submissions: STORM_SUBMISSIONS,
        n_deltas: STORM_DELTAS,
        queue_capacity,
    }
}

/// The main acceptance-criteria test: one seeded update-storm
/// scenario, all invariants, plus full-run determinism (the sim runs
/// twice).
#[test]
fn update_storm_invariants_hold_and_replay_exactly() {
    let run = run_storm_sim(42);

    // Every submission got exactly one terminal outcome.
    assert_eq!(
        run.rejected.len() + run.terminal.len(),
        run.n_submissions,
        "submissions leaked or double-resolved"
    );
    let mut ids: Vec<u64> = run.terminal.iter().map(|(id, _)| *id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), run.terminal.len(), "a ticket resolved twice");

    // Counters reconcile exactly — including the live-update
    // identities now part of `ServiceStats::reconciles`.
    let s = &run.stats;
    assert!(s.reconciles(), "stats do not reconcile: {s:?}");
    assert_eq!(s.failed, 0, "no outcome may be a hard failure: {s:?}");
    assert_eq!(s.admitted, s.answered + s.degraded + s.cancelled);
    assert_eq!(s.submitted, s.admitted + s.rejected);
    assert_eq!(s.submitted, run.n_submissions as u64);

    // The delta stream actually ran, every update published an epoch,
    // and — after the drain dropped the last pins — every superseded
    // epoch was retired. Nothing lingers.
    assert_eq!(s.updates_applied, run.n_deltas as u64);
    assert_eq!(s.epochs_published, run.n_deltas as u64 + 1);
    assert_eq!(s.epochs_retired, run.n_deltas as u64, "{s:?}");
    assert_eq!(s.epoch_retire_lag, 0, "epochs still pinned after drain");

    // The shared cache's books balance: what was inserted and not yet
    // retired is exactly what is resident (never negative).
    assert_eq!(
        run.cache.inserted - run.cache.retired,
        run.cache.expected_resident(),
        "cache counters do not reconcile: {:?}",
        run.cache
    );
    assert!(run.cache.inserted >= run.cache.retired);

    // Overload bit (typed rejections, deadline sheds) and the fault
    // window bit (budget-tripped degradations) both fired.
    assert!(
        s.queue_depth_high_water <= run.queue_capacity,
        "queue depth {} exceeded bound {}",
        s.queue_depth_high_water,
        run.queue_capacity
    );
    assert!(s.rejected > 0, "2× overload never rejected anything");
    assert!(s.shed > 0, "no queued entry ever exceeded its deadline");
    assert!(
        run.terminal
            .iter()
            .any(|(_, l)| l == &format!("degraded:{:?}", DegradedReason::ExpansionsExhausted)),
        "the budget-fault storm never degraded a query"
    );

    // Queries were answered on both sides of at least one swap: some
    // tickets pinned to the seed epoch, some to later ones.
    assert!(!run.answered.is_empty());
    let pinned: std::collections::BTreeSet<u64> =
        run.answered.iter().map(|(_, _, e, _)| *e).collect();
    assert!(
        pinned.len() > 1,
        "every answer was pinned to a single epoch — the storm never interleaved: {pinned:?}"
    );

    // Goodput under the storm: useful work for at least half of
    // virtual time (the ISSUE's ≥ 0.5 gate).
    let goodput = run.executed_units as f64 / run.elapsed as f64;
    assert!(
        (0.5..=1.0).contains(&goodput),
        "goodput ratio {goodput} out of range (executed {} over {})",
        run.executed_units,
        run.elapsed
    );

    // Full-run determinism: same seed ⇒ same outcomes, same stats,
    // same answers, same apply reports — byte for byte.
    let replay = run_storm_sim(42);
    assert_eq!(run, replay, "update storm did not replay identically");

    // And a different seed actually changes the run.
    let other = run_storm_sim(43);
    assert_ne!(
        run.terminal, other.terminal,
        "seed does not influence the scenario"
    );
}

// ---------------------------------------------------------------------------
// Focused epoch-pinning tests (virtual time, step driver)
// ---------------------------------------------------------------------------

/// The admission race, service-level: a query admitted (and stamped)
/// under epoch N whose execution happens only *after* a delta swaps in
/// epoch N+1 must answer from N — bit-identical to a flat engine over
/// N's network, observing zero bytes of N+1.
#[test]
fn query_admitted_before_swap_answers_from_its_pinned_epoch() {
    let net = grid(6, 6, 0.3, RoadClass::LocalBoston).unwrap();
    let mgr = EpochManager::new(net, EngineConfig::default()).unwrap();
    let live = LiveBackend::new(&mgr);
    let clock = ManualClock::new();
    let svc = QueryService::new(&live, &clock, ServiceConfig::default()).with_epochs(&mgr);

    let spec = QuerySpec::new(
        NodeId(0),
        NodeId(35),
        Interval::of(hm(7, 0), hm(8, 0)),
        DayCategory::WORKDAY,
    );
    let old_net = Arc::clone(mgr.current().network());
    let want = answer_sig(
        &Engine::new(old_net.as_ref(), EngineConfig::default())
            .all_fastest_paths(&spec)
            .unwrap(),
    );

    // Admit (stamps epoch 0, pins it), then swap in epoch 1 *before*
    // the service executes anything.
    let ticket = svc.submit(Submission::new(spec.clone())).unwrap();
    let delta = old_net.seeded_delta(7, 20, 1).unwrap();
    mgr.apply_delta(&delta).unwrap();
    assert_eq!(mgr.current_id().0, 1);
    // The swapped-in epoch publishes a *different* network object; the
    // pinned query must not touch it.
    assert!(!Arc::ptr_eq(mgr.current().network(), &old_net));

    while svc.step().is_some() {}
    let outcomes = svc.take_outcomes();
    let (_, out) = outcomes.iter().find(|(id, _)| *id == ticket).unwrap();
    match out {
        ServiceOutcome::Answered(a) => assert_eq!(
            answer_sig(a),
            want,
            "pinned query leaked bytes from the post-swap epoch"
        ),
        other => panic!("expected an answer, got {other:?}"),
    }

    // The new epoch answers for itself — and (with a 20-edge delta on
    // a 6×6 grid) differently, which is what makes the check above
    // meaningful rather than vacuous.
    let new_ans = answer_sig(
        &Engine::new(mgr.current().network().as_ref(), EngineConfig::default())
            .all_fastest_paths(&spec)
            .unwrap(),
    );
    assert_ne!(new_ans, want, "delta did not perturb the probe query");
}

/// A submission pre-stamped to an epoch that has since retired must
/// fail with the typed `EpochRetired` error — never silently answer
/// from a different epoch.
#[test]
fn stale_pre_stamped_submission_fails_typed() {
    let net = grid(5, 5, 0.3, RoadClass::LocalOutside).unwrap();
    let mgr = EpochManager::new(net, EngineConfig::default()).unwrap();
    let live = LiveBackend::new(&mgr);
    let clock = ManualClock::new();
    let svc = QueryService::new(&live, &clock, ServiceConfig::default()).with_epochs(&mgr);

    let stale = mgr.current_id();
    let delta = mgr.current().network().seeded_delta(3, 4, 1).unwrap();
    mgr.apply_delta(&delta).unwrap(); // epoch 0 now unpinned → retired

    let spec = QuerySpec::new(
        NodeId(0),
        NodeId(24),
        Interval::of(hm(7, 0), hm(7, 30)),
        DayCategory::WORKDAY,
    )
    .with_epoch(stale);
    let ticket = svc.submit(Submission::new(spec)).unwrap();
    while svc.step().is_some() {}

    let outcomes = svc.take_outcomes();
    let (_, out) = outcomes.iter().find(|(id, _)| *id == ticket).unwrap();
    match out {
        ServiceOutcome::Failed(e) => {
            assert!(
                e.to_string().contains("already retired"),
                "wrong failure: {e}"
            );
        }
        other => panic!("stale pin must fail typed, got {other:?}"),
    }
    let s = svc.stats();
    assert!(s.reconciles(), "{s:?}");
    assert_eq!(s.failed, 1);
}
