//! Property tests for the query engine: on random networks and random
//! query windows, the interval engine must agree with the
//! fixed-instant oracle at every probed instant, forwards and
//! backwards.

use allfp::arrival::{ArrivalPlanner, ArrivalQuerySpec};
use allfp::baseline::astar_at;
use allfp::{Engine, EngineConfig, NaiveLb, QuerySpec};
use proptest::prelude::*;
use pwl::time::hm;
use pwl::Interval;
use roadnet::generators::random_geometric;
use roadnet::NodeId;
use traffic::DayCategory;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    #[test]
    fn all_fp_agrees_with_oracle(
        seed in 0u64..1_000,
        src in 0u32..40,
        dst in 0u32..40,
        lo_frac in 0.0f64..0.8,
        len in 20.0f64..150.0,
    ) {
        prop_assume!(src != dst);
        let net = random_geometric(40, 2.5, 3, seed).unwrap();
        // a window overlapping the morning rush so speeds vary
        let lo = hm(6, 0) + lo_frac * 240.0;
        let interval = Interval::of(lo, lo + len);
        let q = QuerySpec::new(NodeId(src), NodeId(dst), interval, DayCategory::WORKDAY);
        let engine = Engine::new(&net, EngineConfig::default());
        let ans = engine.all_fastest_paths(&q).unwrap(); // generator connects everything
        let lb = NaiveLb::new(net.max_speed());
        for k in 0..=12 {
            let l = interval.lo() + interval.len() * (k as f64) / 12.0;
            let oracle = astar_at(&net, q.source, q.target, l, q.category, &lb)
                .unwrap()
                .travel_minutes;
            let border = ans.travel_at(l).unwrap();
            prop_assert!(
                (border - oracle).abs() <= 1e-6 * (1.0 + oracle),
                "l={l}: border {border} vs oracle {oracle}"
            );
        }
        // partition structure
        prop_assert!(pwl::approx_eq(ans.partition[0].0.lo(), interval.lo()));
        prop_assert!(pwl::approx_eq(ans.partition.last().unwrap().0.hi(), interval.hi()));
        for w in ans.partition.windows(2) {
            prop_assert!(pwl::approx_eq(w[0].0.hi(), w[1].0.lo()));
            prop_assert_ne!(w[0].1, w[1].1);
        }
    }

    #[test]
    fn basic_mode_matches_pruned_mode(
        seed in 0u64..500,
        src in 0u32..25,
        dst in 0u32..25,
    ) {
        prop_assume!(src != dst);
        let net = random_geometric(25, 1.8, 3, seed).unwrap();
        let interval = Interval::of(hm(7, 0), hm(8, 0));
        let q = QuerySpec::new(NodeId(src), NodeId(dst), interval, DayCategory::WORKDAY);
        let pruned = Engine::new(&net, EngineConfig::default());
        let basic = Engine::new(
            &net,
            EngineConfig { prune_dominated: false, ..EngineConfig::default() },
        );
        let a = pruned.all_fastest_paths(&q).unwrap();
        let b = basic.all_fastest_paths(&q).unwrap();
        prop_assert_eq!(a.partition.len(), b.partition.len());
        for (x, y) in a.partition.iter().zip(b.partition.iter()) {
            prop_assert!(x.0.approx_eq(&y.0), "{} vs {}", x.0, y.0);
            prop_assert_eq!(&a.paths[x.1].nodes, &b.paths[y.1].nodes);
        }
    }

    #[test]
    fn arrival_is_inverse_of_forward(
        seed in 0u64..500,
        src in 0u32..30,
        dst in 0u32..30,
    ) {
        prop_assume!(src != dst);
        let net = random_geometric(30, 2.0, 3, seed).unwrap();
        // forward over a wide window; compare departures via the inverse
        let fwd_window = Interval::of(hm(6, 0), hm(9, 0));
        let q = QuerySpec::new(NodeId(src), NodeId(dst), fwd_window, DayCategory::WORKDAY);
        let engine = Engine::new(&net, EngineConfig::default());
        let fwd = engine.all_fastest_paths(&q).unwrap();
        let a_star =
            pwl::MonotonePwl::arrival_from_travel(fwd.lower_border.as_pwl()).unwrap();

        let planner = ArrivalPlanner::new(&net, EngineConfig::default()).unwrap();
        let arr_window = Interval::of(hm(7, 0), hm(8, 30));
        let arr = planner
            .all_fastest_paths(&ArrivalQuerySpec {
                source: NodeId(src),
                target: NodeId(dst),
                arrival: arr_window,
                category: DayCategory::WORKDAY,
            })
            .unwrap();

        let reach = a_star.range();
        for k in 0..=10 {
            let a = arr_window.lo() + arr_window.len() * (k as f64) / 10.0;
            // only arrivals strictly inside what forward-window
            // departures can realize are comparable
            if !reach.contains_approx(a)
                || pwl::approx_eq(a, reach.lo())
                || pwl::approx_eq(a, reach.hi())
            {
                continue;
            }
            let dep_bwd = arr.departure_at(a).unwrap();
            let dep_fwd = a_star.inverse_at(a).unwrap();
            prop_assert!(
                (dep_bwd - dep_fwd).abs() < 1e-6,
                "a={a}: backward {dep_bwd} vs forward-inverse {dep_fwd}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    /// The constant-speed degraded fallback is a *sound upper bound*:
    /// at every leaving instant in the window, the fallback path's
    /// exact travel time is at least the true fastest travel time.
    /// This is what makes degraded answers safe to serve — they may be
    /// slower than optimal, never optimistic.
    #[test]
    fn degraded_fallback_upper_bounds_exact_border(
        seed in 0u64..400,
        src in 0u32..30,
        dst in 0u32..30,
        lo_frac in 0.0f64..0.8,
        len in 20.0f64..120.0,
    ) {
        prop_assume!(src != dst);
        let net = random_geometric(30, 2.0, 3, seed).unwrap();
        let lo = hm(6, 0) + lo_frac * 240.0;
        let interval = Interval::of(lo, lo + len);
        let q = QuerySpec::new(NodeId(src), NodeId(dst), interval, DayCategory::WORKDAY);
        let engine = Engine::new(&net, EngineConfig::default());

        let exact = engine.all_fastest_paths(&q).unwrap();
        // A zero-expansion budget forces the constant-speed fallback
        // immediately — the same route the service's breaker serves
        // while storage is unhealthy.
        let starved = q.clone().with_budget(
            allfp::QueryBudget::unlimited().with_max_expansions(0),
        );
        let degraded = match engine.run_robust(&starved).unwrap() {
            allfp::QueryOutcome::Degraded(d) => d,
            allfp::QueryOutcome::Exact(_) => {
                return Err(TestCaseError::fail("zero budget cannot finish exactly"));
            }
        };
        prop_assert_eq!(degraded.fallback.nodes.first(), Some(&q.source));
        prop_assert_eq!(degraded.fallback.nodes.last(), Some(&q.target));

        for k in 0..=16 {
            let l = interval.lo() + interval.len() * (k as f64) / 16.0;
            let best = exact.travel_at(l).unwrap();
            let fb = degraded.fallback.travel.eval_clamped(l);
            prop_assert!(
                fb >= best - 1e-6 * (1.0 + best),
                "l={l}: fallback {fb} beats the exact border {best}"
            );
        }
        // And the advertised minimum matches its own function.
        let mins = (0..=64)
            .map(|k| {
                let l = interval.lo() + interval.len() * (k as f64) / 64.0;
                degraded.fallback.travel.eval_clamped(l)
            })
            .fold(f64::INFINITY, f64::min);
        prop_assert!(degraded.fallback_travel_minutes <= mins + 1e-9);
    }
}
