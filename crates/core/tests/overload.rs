//! The overload-chaos harness: the `QueryService` under seeded 2×
//! sustained overload composed with storage fault storms, driven
//! entirely in virtual time so every run replays bit-identically.
//!
//! The scenario (`run_chaos_sim`): a grid network served from the full
//! production storage stack (`CcamStore → BufferPool → ChecksummedStore
//! → FaultInjectingStore → MemStore`) behind a `QueryService` with an
//! in-memory constant-speed fallback engine. A seeded open-loop
//! arrival schedule offers ~2× the service capacity; mid-run, the
//! fault injector switches to an every-read-faults storm (tripping the
//! storage circuit breaker), then back to quiet (recovering it through
//! a half-open probe). The `ManualClock` advances by each step's
//! measured work units, so "time" is a pure function of the seed.
//!
//! Invariants asserted (the ISSUE's acceptance criteria):
//!
//! * queue depth never exceeds the configured bound;
//! * every submission resolves to exactly one terminal outcome —
//!   answer / degraded / typed `Overloaded` rejection — no hangs, no
//!   silent drops;
//! * the breaker trips and recovers through its half-open probe;
//! * `ServiceStats` counters reconcile exactly
//!   (`admitted = answered + degraded + cancelled` here, since the
//!   scenario is constructed fault-storm-survivable: `failed == 0`);
//! * answered queries are bit-identical to a fault-free serial run;
//! * the whole run — outcomes, stats, fault log — is deterministic
//!   given the seed;
//! * goodput under the 2× overload stays within a stated fraction of
//!   offered capacity.

use std::collections::HashMap;
use std::sync::Arc;

use allfp::service::{
    ArrivalSchedule, BreakerConfig, BreakerState, DrainMode, ManualClock, OverloadReason, Priority,
    QueryService, ServiceClock, ServiceConfig, ServiceOutcome, ServiceStats, Submission, WallClock,
};
use allfp::{
    AllFpAnswer, DegradedReason, Engine, EngineConfig, QueryBudget, QueryOutcome, QuerySpec,
};
use ccam::{
    BlockStore, CcamStore, ChecksummedStore, FaultEvent, FaultInjectingStore, FaultPlan, MemStore,
    PlacementPolicy, DEFAULT_PAGE_SIZE,
};
use pwl::time::hm;
use pwl::Interval;
use roadnet::generators::grid;
use roadnet::{NodeId, RoadNetwork};
use traffic::{DayCategory, RoadClass};

/// Deterministic 64-bit LCG (same constants as `MMIX`).
fn lcg(x: &mut u64) -> u64 {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *x
}

/// The production storage layering with a fault schedule at the
/// bottom.
fn faulty_stack(plan: FaultPlan) -> (Arc<FaultInjectingStore>, Arc<dyn BlockStore>) {
    let raw = Arc::new(MemStore::new(DEFAULT_PAGE_SIZE));
    let injected = Arc::new(FaultInjectingStore::new(raw as Arc<dyn BlockStore>, plan));
    let top: Arc<dyn BlockStore> = Arc::new(ChecksummedStore::new(
        Arc::clone(&injected) as Arc<dyn BlockStore>
    ));
    (injected, top)
}

fn sample_specs(net: &RoadNetwork, n: usize, seed: u64) -> Vec<QuerySpec> {
    let nodes = net.n_nodes() as u64;
    let mut x = seed ^ 0x0EE2_10AD;
    (0..n)
        .map(|_| {
            let s = NodeId((lcg(&mut x) % nodes) as u32);
            let e = loop {
                let c = NodeId((lcg(&mut x) % nodes) as u32);
                if c != s {
                    break c;
                }
            };
            let lo = hm(6, 30) + (lcg(&mut x) % 90) as f64;
            QuerySpec::new(s, e, Interval::of(lo, lo + 20.0), DayCategory::WORKDAY)
        })
        .collect()
}

/// A bit-exact signature of an answer: partition bounds (as raw f64
/// bits) plus the node sequence of each sub-interval's fastest path.
type AnswerSig = Vec<(u64, u64, Vec<usize>)>;

fn answer_sig(a: &AllFpAnswer) -> AnswerSig {
    a.partition
        .iter()
        .map(|(iv, pi)| {
            (
                iv.lo().to_bits(),
                iv.hi().to_bits(),
                a.paths[*pi].nodes.iter().map(|n| n.index()).collect(),
            )
        })
        .collect()
}

/// Everything one chaos run produced, in a `PartialEq` shape so two
/// runs can be compared wholesale.
#[derive(Debug, PartialEq)]
struct SimResult {
    /// `(ticket, kind[:reason])` in completion order.
    terminal: Vec<(u64, String)>,
    /// `(submission index, rejection reason)` in submission order.
    rejected: Vec<(usize, String)>,
    /// `(ticket, spec index, bit-exact answer signature)` for every
    /// `Answered` outcome.
    answered: Vec<(u64, usize, AnswerSig)>,
    stats: ServiceStats,
    fault_log: Vec<FaultEvent>,
    /// Work units executed across all steps.
    executed_units: u64,
    /// Final virtual time.
    elapsed: u64,
    n_submissions: usize,
    queue_capacity: usize,
}

const CHAOS_SUBMISSIONS: usize = 140;

/// One full chaos scenario in virtual time. Pure function of `seed`.
fn run_chaos_sim(seed: u64) -> SimResult {
    let net = grid(8, 8, 0.3, RoadClass::LocalBoston).unwrap();
    let specs = sample_specs(&net, 12, seed);

    // Calibrate per-spec costs (work units = expansions) on the
    // in-memory engine; identical data ⇒ identical costs on disk.
    let mem_engine = Engine::new(&net, EngineConfig::default());
    let costs: Vec<u64> = specs
        .iter()
        .map(|q| {
            mem_engine
                .all_fastest_paths(q)
                .unwrap()
                .stats
                .expanded_paths
                .max(1) as u64
        })
        .collect();
    let mean_cost = (costs.iter().sum::<u64>() / costs.len() as u64).max(1);

    let (injected, top) = faulty_stack(FaultPlan::quiet(seed));
    let disk = CcamStore::build(&net, top, PlacementPolicy::ConnectivityClustered, 64).unwrap();
    disk.clear_cache().unwrap();
    let primary = Engine::new(&disk, EngineConfig::default());
    let fallback = Engine::new(&net, EngineConfig::default());

    let clock = ManualClock::new();
    let queue_capacity = 12;
    let config = ServiceConfig {
        queue_capacity,
        shed_expired: true,
        default_cost: mean_cost,
        initial_units_per_cost: 1.0,
        breaker: BreakerConfig {
            window: 8,
            trip_failures: 4,
            cooldown: 8 * mean_cost,
            probe_successes: 2,
            ..BreakerConfig::default()
        },
    };
    let svc = QueryService::new(&primary, &clock, config).with_fallback(&fallback);

    // 2× overload: mean inter-arrival gap of half the mean cost
    // against a service capacity of one work unit per clock unit.
    let schedule = ArrivalSchedule::open_loop(
        seed ^ 0xA11F_0AD5,
        CHAOS_SUBMISSIONS,
        (mean_cost / 2).max(1),
    );
    let horizon = *schedule.times().last().unwrap();
    // Fault storm over the middle fifth of the arrival window.
    let storm = (horizon * 2 / 5, horizon * 3 / 5);
    let storm_plan = FaultPlan::quiet(seed).with_transient_reads(1);

    let mut ticket_spec: HashMap<u64, usize> = HashMap::new();
    let mut rejected = Vec::new();
    let mut executed_units = 0u64;
    let mut next = 0usize;
    let mut storm_on = false;

    loop {
        let now = clock.now();
        if !storm_on && now >= storm.0 && now < storm.1 {
            // Storm begins: every physical read faults (retry
            // exhaustion ⇒ typed storage errors), and the page cache
            // is dropped so reads actually reach the injector.
            injected.set_plan(storm_plan);
            disk.clear_cache().unwrap();
            storm_on = true;
        }
        if storm_on && now >= storm.1 {
            injected.set_plan(FaultPlan::quiet(seed));
            storm_on = false;
        }
        if next < schedule.len() && schedule.times()[next] <= now {
            let idx = next % specs.len();
            let sub = Submission::new(specs[idx].clone())
                .with_class(if next % 4 == 3 {
                    Priority::Batch
                } else {
                    Priority::Interactive
                })
                .with_deadline(now + 6 * mean_cost)
                .with_cost_hint(costs[idx]);
            match svc.submit(sub) {
                Ok(id) => {
                    ticket_spec.insert(id, idx);
                }
                Err(o) => rejected.push((next, format!("{:?}", o.reason))),
            }
            next += 1;
            continue;
        }
        match svc.step() {
            Some(rep) => {
                executed_units += rep.cost;
                clock.advance(rep.cost);
            }
            None => {
                if next >= schedule.len() {
                    break;
                }
                // Idle: jump to the next arrival.
                clock.set(schedule.times()[next]);
            }
        }
    }
    svc.begin_drain(DrainMode::Finish);
    while let Some(rep) = svc.step() {
        executed_units += rep.cost;
        clock.advance(rep.cost);
    }

    let stats = svc.stats();
    let outcomes = svc.take_outcomes();
    let mut terminal = Vec::with_capacity(outcomes.len());
    let mut answered = Vec::new();
    for (id, out) in &outcomes {
        let label = match out {
            ServiceOutcome::Degraded(d) => format!("degraded:{:?}", d.reason),
            ServiceOutcome::Cancelled(r) => format!("cancelled:{r:?}"),
            other => other.kind().to_string(),
        };
        terminal.push((*id, label));
        if let ServiceOutcome::Answered(a) = out {
            answered.push((*id, ticket_spec[id], answer_sig(a)));
        }
    }

    SimResult {
        terminal,
        rejected,
        answered,
        stats,
        fault_log: injected.events(),
        executed_units,
        elapsed: clock.now(),
        n_submissions: CHAOS_SUBMISSIONS,
        queue_capacity,
    }
}

/// The main acceptance-criteria test: one seeded chaos scenario, all
/// invariants, plus full-run determinism (the sim runs twice).
#[test]
fn chaos_storm_invariants_hold_and_replay_exactly() {
    let run = run_chaos_sim(42);

    // Every submission got exactly one terminal outcome: a typed
    // rejection at submit, or exactly one recorded ServiceOutcome.
    assert_eq!(
        run.rejected.len() + run.terminal.len(),
        run.n_submissions,
        "submissions leaked or double-resolved"
    );
    let mut ids: Vec<u64> = run.terminal.iter().map(|(id, _)| *id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), run.terminal.len(), "a ticket resolved twice");

    // Counters reconcile exactly; the scenario is constructed so no
    // query outright fails (storage faults degrade via the fallback),
    // giving the ISSUE's identity verbatim.
    let s = &run.stats;
    assert!(s.reconciles(), "stats do not reconcile: {s:?}");
    assert_eq!(s.failed, 0, "no outcome may be a hard failure: {s:?}");
    assert_eq!(
        s.admitted,
        s.answered + s.degraded + s.cancelled,
        "admitted ≠ answered + degraded + cancelled: {s:?}"
    );
    assert_eq!(s.submitted, s.admitted + s.rejected);
    assert_eq!(s.submitted, run.n_submissions as u64);
    assert_eq!(s.admitted, run.terminal.len() as u64);

    // The queue stayed within its bound, and overload actually bit:
    // there were typed rejections and deadline sheds.
    assert!(
        s.queue_depth_high_water <= run.queue_capacity,
        "queue depth {} exceeded bound {}",
        s.queue_depth_high_water,
        run.queue_capacity
    );
    assert!(s.rejected > 0, "2× overload never rejected anything");
    assert!(s.shed > 0, "no queued entry ever exceeded its deadline");

    // The breaker tripped during the storm and recovered through its
    // half-open probe.
    let states: Vec<BreakerState> = s.breaker_transitions.iter().map(|&(_, st)| st).collect();
    assert!(
        states.contains(&BreakerState::Open),
        "breaker never tripped: {states:?}"
    );
    assert!(
        states.contains(&BreakerState::HalfOpen),
        "breaker never probed: {states:?}"
    );
    assert_eq!(
        s.breaker_state,
        BreakerState::Closed,
        "breaker did not recover: {:?}",
        s.breaker_transitions
    );
    assert!(
        s.breaker_fallbacks > 0,
        "storm queries never used the fallback"
    );

    // Degraded storm answers carry the typed storage reason.
    assert!(
        run.terminal
            .iter()
            .any(|(_, l)| l == "degraded:StorageUnavailable"),
        "no degraded outcome was attributed to storage health"
    );

    // Goodput under 2× overload: the service kept its worker busy on
    // useful work for at least half of virtual time. (The bound is
    // deliberately loose — the storm window serves cheap fallbacks —
    // and the ratio cannot exceed 1 by construction.)
    let goodput = run.executed_units as f64 / run.elapsed as f64;
    assert!(
        (0.5..=1.0).contains(&goodput),
        "goodput ratio {goodput} out of range (executed {} over {})",
        run.executed_units,
        run.elapsed
    );

    // Answered queries are bit-identical to fault-free serial
    // execution over an identical (quiet) stack.
    let net = grid(8, 8, 0.3, RoadClass::LocalBoston).unwrap();
    let specs = sample_specs(&net, 12, 42);
    let (_quiet_injector, top) = faulty_stack(FaultPlan::quiet(42));
    let disk = CcamStore::build(&net, top, PlacementPolicy::ConnectivityClustered, 64).unwrap();
    let oracle = Engine::new(&disk, EngineConfig::default());
    assert!(!run.answered.is_empty());
    for (id, spec_idx, sig) in &run.answered {
        let want = match oracle.run_robust(&specs[*spec_idx]).unwrap() {
            QueryOutcome::Exact(a) => answer_sig(&a),
            other => panic!("oracle degraded on a clean stack: {other:?}"),
        };
        assert_eq!(
            sig, &want,
            "ticket {id} (spec {spec_idx}) diverged from fault-free serial"
        );
    }

    // Full-run determinism: same seed ⇒ same outcomes, same stats,
    // same shed decisions, same fault log — byte for byte.
    let replay = run_chaos_sim(42);
    assert_eq!(run, replay, "chaos run did not replay identically");
    assert!(!run.fault_log.is_empty(), "the storm never injected");

    // And a different seed actually changes the run.
    let other = run_chaos_sim(43);
    assert_ne!(
        run.terminal, other.terminal,
        "seed does not influence the scenario"
    );
}

// ---------------------------------------------------------------------------
// Focused service-behavior tests (virtual time, step driver)
// ---------------------------------------------------------------------------

fn small_net_and_specs() -> (RoadNetwork, Vec<QuerySpec>) {
    let net = grid(5, 5, 0.3, RoadClass::LocalOutside).unwrap();
    let specs = sample_specs(&net, 8, 7);
    (net, specs)
}

#[test]
fn interactive_is_served_before_batch() {
    let (net, specs) = small_net_and_specs();
    let engine = Engine::new(&net, EngineConfig::default());
    let clock = ManualClock::new();
    let svc = QueryService::new(&engine, &clock, ServiceConfig::default());

    // Submit batch, interactive, batch, interactive → pops must be
    // interactive first (in FIFO order), then batch (in FIFO order).
    let b1 = svc
        .submit(Submission::new(specs[0].clone()).with_class(Priority::Batch))
        .unwrap();
    let i1 = svc
        .submit(Submission::new(specs[1].clone()).with_class(Priority::Interactive))
        .unwrap();
    let b2 = svc
        .submit(Submission::new(specs[2].clone()).with_class(Priority::Batch))
        .unwrap();
    let i2 = svc
        .submit(Submission::new(specs[3].clone()).with_class(Priority::Interactive))
        .unwrap();

    let mut order = Vec::new();
    while let Some(rep) = svc.step() {
        order.push(rep.id);
    }
    assert_eq!(order, vec![i1, i2, b1, b2]);
    let stats = svc.stats();
    assert!(stats.reconciles());
    assert_eq!(stats.admitted, 4);
    assert_eq!(stats.latency[0].count(), 2, "two interactive completions");
    assert_eq!(stats.latency[1].count(), 2, "two batch completions");
}

#[test]
fn queue_full_and_predicted_late_reject_with_typed_reasons() {
    let (net, specs) = small_net_and_specs();
    let engine = Engine::new(&net, EngineConfig::default());
    let clock = ManualClock::new();
    let config = ServiceConfig {
        queue_capacity: 3,
        default_cost: 10,
        ..ServiceConfig::default()
    };
    let svc = QueryService::new(&engine, &clock, config);

    for spec in specs.iter().take(3) {
        svc.submit(Submission::new(spec.clone())).unwrap();
    }
    // Queue at capacity → typed QueueFull.
    let err = svc.submit(Submission::new(specs[3].clone())).unwrap_err();
    assert_eq!(err.reason, OverloadReason::QueueFull);
    assert_eq!(err.queue_depth, 3);

    // A deadline the estimated wait (3 × 10 units) already exceeds →
    // PredictedLate even though... the queue is full too; drain one to
    // make room and check the deadline path specifically.
    svc.step().unwrap();
    let err = svc
        .submit(Submission::new(specs[3].clone()).with_deadline(clock.now() + 5))
        .unwrap_err();
    assert_eq!(err.reason, OverloadReason::PredictedLate);
    assert!(err.estimated_wait >= 20, "two queued × cost 10");

    // A feasible deadline is admitted.
    svc.submit(Submission::new(specs[3].clone()).with_deadline(clock.now() + 1_000))
        .unwrap();
    while svc.step().is_some() {}
    let stats = svc.stats();
    assert!(stats.reconciles());
    assert_eq!(stats.rejected, 2);
    assert_eq!(stats.answered, 4);
}

#[test]
fn expired_queue_entries_are_shed_from_the_head() {
    let (net, specs) = small_net_and_specs();
    let engine = Engine::new(&net, EngineConfig::default());
    let clock = ManualClock::new();
    let svc = QueryService::new(&engine, &clock, ServiceConfig::default());

    let doomed = svc
        .submit(Submission::new(specs[0].clone()).with_deadline(clock.now() + 50))
        .unwrap();
    let healthy = svc.submit(Submission::new(specs[1].clone())).unwrap();
    clock.advance(100); // the first entry's deadline passes while queued

    let rep = svc.step().unwrap();
    assert_eq!(rep.id, healthy, "expired head must be shed, not served");
    assert!(svc.step().is_none());

    let outcomes = svc.take_outcomes();
    assert_eq!(outcomes.len(), 2);
    assert!(matches!(
        outcomes
            .iter()
            .find(|(id, _)| *id == doomed)
            .map(|(_, o)| o),
        Some(ServiceOutcome::Cancelled(
            allfp::service::CancelReason::ShedExpired
        ))
    ));
    let stats = svc.stats();
    assert!(stats.reconciles());
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.answered, 1);
}

#[test]
fn drain_cancel_resolves_queued_work_and_rejects_new() {
    let (net, specs) = small_net_and_specs();
    let engine = Engine::new(&net, EngineConfig::default());
    let clock = ManualClock::new();
    let svc = QueryService::new(&engine, &clock, ServiceConfig::default());

    for spec in specs.iter().take(4) {
        svc.submit(Submission::new(spec.clone())).unwrap();
    }
    svc.begin_drain(DrainMode::Cancel);
    assert!(svc.is_draining());
    assert_eq!(svc.queue_depth(), 0, "cancel drain empties the queue");
    assert!(svc.step().is_none());

    // Nothing new is admitted while draining.
    let err = svc.submit(Submission::new(specs[0].clone())).unwrap_err();
    assert_eq!(err.reason, OverloadReason::Draining);

    let outcomes = svc.take_outcomes();
    assert_eq!(outcomes.len(), 4);
    assert!(outcomes.iter().all(|(_, o)| matches!(
        o,
        ServiceOutcome::Cancelled(allfp::service::CancelReason::Drained)
    )));
    let stats = svc.stats();
    assert!(stats.reconciles());
    assert_eq!(stats.cancelled, 4);
    assert_eq!(stats.rejected, 1);
    assert!(svc.cancel_token().is_cancelled());
}

#[test]
fn threaded_serve_resolves_every_admission() {
    let (net, specs) = small_net_and_specs();
    let engine = Engine::new(&net, EngineConfig::default());
    let clock = WallClock::new();
    let config = ServiceConfig {
        queue_capacity: 8,
        ..ServiceConfig::default()
    };
    let svc = QueryService::new(&engine, &clock, config);

    let submitted = 48usize;
    let admitted = svc.serve(3, |svc| {
        let mut ok = 0u64;
        for k in 0..submitted {
            if svc
                .submit(Submission::new(specs[k % specs.len()].clone()))
                .is_ok()
            {
                ok += 1;
            }
        }
        ok
    });

    // serve() drains before returning: every admitted ticket has
    // exactly one recorded outcome, and the books balance.
    let outcomes = svc.take_outcomes();
    assert_eq!(outcomes.len() as u64, admitted);
    let stats = svc.stats();
    assert!(stats.reconciles(), "{stats:?}");
    assert_eq!(stats.submitted, submitted as u64);
    assert_eq!(stats.admitted, admitted);
    assert_eq!(stats.answered, admitted, "healthy store answers exactly");
    assert_eq!(stats.failed, 0);
}

// ---------------------------------------------------------------------------
// Satellite: deadline overshoot is bounded at compound granularity
// ---------------------------------------------------------------------------

/// A deliberately compound-heavy workload: a long leaving-time window
/// over rush-hour patterns makes every composition expensive, and a
/// far target keeps the search expanding. With pop-granularity
/// polling alone (every `WATCH_EVERY = 32` pops) the deadline could
/// overshoot by 32 full expansions; per-compound polling bounds the
/// overshoot to roughly one compound. The wall-clock bound here is
/// generous (CI machines stall), but far below what a pop-granularity
/// overshoot on this workload would produce.
#[test]
fn deadline_overshoot_is_bounded_on_heavy_compounds() {
    let net = grid(10, 10, 0.25, RoadClass::LocalBoston).unwrap();
    let engine = Engine::new(&net, EngineConfig::default());
    // Full waking day: rush-hour patterns make many-piece travel
    // functions, so each compound is heavy.
    let q = QuerySpec::new(
        NodeId(0),
        NodeId(99),
        Interval::of(hm(5, 0), hm(22, 0)),
        DayCategory::WORKDAY,
    );

    // Sanity: unbudgeted, this query is genuinely heavy (otherwise the
    // overshoot bound below proves nothing).
    let t0 = std::time::Instant::now();
    let full = engine.all_fastest_paths(&q).unwrap();
    let full_time = t0.elapsed();
    assert!(full.stats.expanded_paths > 64, "workload too light");

    let deadline = std::time::Duration::from_millis(5);
    if full_time < 4 * deadline {
        // The machine is fast enough to finish near the deadline —
        // the overshoot measurement would be meaningless noise.
        return;
    }

    let budgeted = q
        .clone()
        .with_budget(QueryBudget::unlimited().with_deadline(deadline));
    let t0 = std::time::Instant::now();
    let out = engine.run_robust(&budgeted).unwrap();
    let elapsed = t0.elapsed();
    match out {
        QueryOutcome::Degraded(d) => {
            assert_eq!(d.reason, DegradedReason::DeadlineExpired);
            assert!(
                d.fallback.nodes.first() == Some(&q.source)
                    && d.fallback.nodes.last() == Some(&q.target),
                "fallback must still be a drivable plan"
            );
        }
        QueryOutcome::Exact(_) => panic!("a 5ms deadline finished a {full_time:?} search"),
    }
    // Overshoot bound: deadline + salvage/fallback assembly + one
    // compound. 250ms of slack absorbs CI noise while still being ~50×
    // tighter than the full search.
    assert!(
        elapsed < deadline + std::time::Duration::from_millis(250),
        "deadline overshoot too large: {elapsed:?} vs {deadline:?} (full search {full_time:?})"
    );
}
