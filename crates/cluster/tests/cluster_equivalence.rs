//! Golden cross-partition equivalence suite (the style of
//! `core/tests/hierarchy_equivalence.rs`): answers served by the
//! sharded cluster must be bit-identical to the flat single-node
//! pipeline and consistent with the hierarchy backend on the same
//! pinned epoch.
//!
//! Three layers of the claim:
//!
//! * the raw [`cluster::NodeBackend`] (no service in between), whose
//!   engine reads non-resident shards through simulated RPC, returns
//!   bit-identical allFP and singleFP answers to a manager-built flat
//!   backend over the same network;
//! * a calm (fault-free) cluster run serves *every* admitted query
//!   exactly — no degradation from sharding alone — and every answer
//!   matches the flat oracle;
//! * the hierarchy backend agrees with the cluster on singleFP answer
//!   values (travel time and best-leaving bits; path identity among
//!   co-optimal ties is per-backend), tying the distributed contract
//!   back to the PR-4 equivalence chain.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use allfp::service::{BreakerConfig, LatencyHistogram, ManualClock};
use allfp::{
    Engine, EngineConfig, EpochId, EpochManager, EstimatorKind, LiveBackend, PathfindBackend,
    QueryOutcome, SingleFpAnswer,
};
use cluster::{
    answer_sig, run_cluster_sim, sample_specs, BusConfig, ClusterFaultPlan, ClusterScenario,
    NodeBackend, RetryPolicy, ShardMap, VirtualBus,
};
use hierarchy::{HierarchyConfig, HierarchyEngine};
use roadnet::generators::grid;
use roadnet::RoadNetwork;
use traffic::RoadClass;

const SEED: u64 = 7;

fn test_net() -> RoadNetwork {
    grid(8, 8, 0.3, RoadClass::LocalBoston).unwrap()
}

fn sharded_config(target_shards: usize) -> EngineConfig {
    EngineConfig {
        estimator: EstimatorKind::BoundaryPartitioned {
            groups: target_shards,
        },
        ..EngineConfig::default()
    }
}

/// A fault-free cluster node over `net` with two of three shard
/// copies elsewhere, so cross-shard fetches genuinely happen.
fn make_node(net: &RoadNetwork, target_shards: usize, config: EngineConfig) -> NodeBackend {
    let manager = EpochManager::new(net.clone(), config).unwrap();
    let shards = Arc::new(ShardMap::build(net, target_shards, 3, 1).unwrap());
    let bus = Rc::new(VirtualBus::new(
        SEED,
        BusConfig::default(),
        ClusterFaultPlan::default(),
    ));
    NodeBackend::new(
        0,
        manager,
        shards,
        bus,
        Rc::new(ManualClock::new()),
        BreakerConfig::default(),
        RetryPolicy::default(),
        Rc::new(RefCell::new(LatencyHistogram::default())),
    )
}

/// Bit-exact signature of a singleFP answer.
fn single_sig(a: &SingleFpAnswer) -> (Vec<usize>, u64, u64, u64) {
    (
        a.path.nodes.iter().map(|n| n.index()).collect(),
        a.travel_minutes.to_bits(),
        a.best_leaving.lo().to_bits(),
        a.best_leaving.hi().to_bits(),
    )
}

#[test]
fn node_backend_matches_flat_backend_bit_for_bit() {
    let net = test_net();
    let specs = sample_specs(&net, 24, SEED);
    let node = make_node(&net, 6, sharded_config(6));
    let flat_mgr = EpochManager::new(net.clone(), sharded_config(6)).unwrap();
    let flat = LiveBackend::new(&flat_mgr);
    for (i, q) in specs.iter().enumerate() {
        let got = node.all_fastest_paths(q).unwrap();
        let want = flat.all_fastest_paths(q).unwrap();
        assert_eq!(
            answer_sig(&got),
            answer_sig(&want),
            "allFP answer {i} diverged between cluster node and flat backend"
        );
        let got1 = node.single_fastest_path(q).unwrap();
        let want1 = flat.single_fastest_path(q).unwrap();
        assert_eq!(
            single_sig(&got1),
            single_sig(&want1),
            "singleFP answer {i} diverged between cluster node and flat backend"
        );
    }
    // The comparison only means something if remote shards were read.
    let rpc = node.rpc_counters();
    assert!(
        rpc.shard_fetches > 0,
        "no cross-partition traffic — the equivalence was vacuous"
    );
    assert_eq!(rpc.shard_unreachable, 0, "fault-free bus lost a shard");
}

#[test]
fn node_backend_matches_flat_and_hierarchy_on_singlefp() {
    let net = test_net();
    let specs = sample_specs(&net, 12, SEED ^ 0x5EED);
    // Tie-breaking in expansion order follows the estimator, so the
    // node runs the same default config the oracles were built with.
    let node = make_node(&net, 6, EngineConfig::default());
    let flat = Engine::new(&net, EngineConfig::default());
    let hier =
        HierarchyEngine::build(&net, EngineConfig::default(), HierarchyConfig::default()).unwrap();
    for (i, q) in specs.iter().enumerate() {
        let got = node.single_fastest_path(q).unwrap();
        // Against the flat engine the contract is bit-for-bit,
        // including the chosen path among co-optimal ties.
        let fs = flat.single_fastest_path(q).unwrap();
        assert_eq!(
            single_sig(&got),
            single_sig(&fs),
            "singleFP answer {i} diverged between cluster node and flat engine"
        );
        // The hierarchy may break a tie between equally fast paths
        // differently (its expansion runs over the overlay), so across
        // backends the guarantee is on the answer values: identical
        // travel time and best-leaving interval, bit for bit.
        let hs = hier.single_fastest_path(q).unwrap();
        assert_eq!(
            got.travel_minutes.to_bits(),
            hs.travel_minutes.to_bits(),
            "singleFP travel time {i} diverged between cluster node and hierarchy"
        );
        assert_eq!(
            (
                got.best_leaving.lo().to_bits(),
                got.best_leaving.hi().to_bits()
            ),
            (
                hs.best_leaving.lo().to_bits(),
                hs.best_leaving.hi().to_bits()
            ),
            "singleFP best-leaving interval {i} diverged between cluster node and hierarchy"
        );
    }
}

#[test]
fn calm_cluster_serves_everything_exactly_and_matches_oracle() {
    let sc = ClusterScenario::calm(SEED);
    let result = run_cluster_sim(&sc).unwrap();
    assert!(result.stats.reconciles());
    assert_eq!(result.stats.unroutable, 0);
    assert_eq!(result.stats.failed, 0);
    assert_eq!(
        result.stats.degraded, 0,
        "sharding alone must never degrade an answer on a healthy bus"
    );
    assert_eq!(result.stats.answered, result.stats.admitted);
    assert!(result.stats.answered > 0);

    // Every answer bit-identical to the flat single-node oracle.
    let net = test_net();
    let specs = sample_specs(&net, sc.n_specs, sc.seed);
    let mgr = EpochManager::new(net, sharded_config(sc.target_shards)).unwrap();
    let oracle = LiveBackend::new(&mgr);
    for rec in &result.answered {
        let mut q = specs[rec.spec].clone();
        q.epoch = Some(EpochId(rec.epoch));
        match oracle.run_robust(&q).unwrap() {
            QueryOutcome::Exact(a) => assert_eq!(
                answer_sig(&a),
                rec.sig,
                "calm-cluster ticket {} diverged from oracle",
                rec.ticket
            ),
            QueryOutcome::Degraded(_) => panic!("oracle degraded on ticket {}", rec.ticket),
        }
    }

    // And the calm run replays bit-exactly too.
    let again = run_cluster_sim(&sc).unwrap();
    assert_eq!(result, again);
}
