//! The cluster chaos harness: the sharded fleet under seeded 2×
//! overload composed with node loss, a network partition, RPC
//! latency storms, and live traffic deltas — all in virtual time.
//!
//! Invariants asserted (the ISSUE's acceptance criteria):
//!
//! * every offered arrival resolves to exactly one terminal outcome —
//!   answered / degraded / failed / cancelled / typed rejection /
//!   unroutable — including submissions cancelled by a node crash;
//! * `ClusterStats` reconciles exactly, per node and fleet-wide;
//! * surviving (`Answered`) queries are bit-identical to a
//!   single-node oracle on the same pinned epoch, mid-run deltas
//!   included;
//! * goodput stays ≥ 0.5 with one shard owner down for 80% of the
//!   run (replication keeps every shard reachable);
//! * a full-run replay from the same seed is bit-exact, and a
//!   different seed produces a different run;
//! * the robustness machinery actually fired: RPC retries, replica
//!   failovers, peer-down fast-fails, breaker activity, and
//!   crash-cancelled tickets all show up in the counters.

use std::collections::HashMap;

use allfp::{
    EngineConfig, EpochId, EpochManager, EstimatorKind, LiveBackend, PathfindBackend, QueryOutcome,
};
use cluster::{answer_sig, run_cluster_sim, sample_specs, ClusterScenario, ClusterSimResult};
use roadnet::generators::grid;
use traffic::RoadClass;

/// Replay the cluster's epoch chain on a single-node manager and
/// check every surviving answer bit-for-bit against it.
fn assert_answers_match_oracle(sc: &ClusterScenario, result: &ClusterSimResult) {
    let net = grid(sc.grid_w, sc.grid_h, 0.3, RoadClass::LocalBoston).unwrap();
    let specs = sample_specs(&net, sc.n_specs, sc.seed);
    let config = EngineConfig {
        estimator: EstimatorKind::BoundaryPartitioned {
            groups: sc.target_shards,
        },
        ..EngineConfig::default()
    };
    let mgr = EpochManager::new(net, config).unwrap();
    // Pin every epoch so none retires while we replay answers
    // submitted against older network versions.
    let mut pins = vec![mgr.current()];
    for seq in 1..=result.stats.deltas_applied {
        let delta = mgr
            .current()
            .network()
            .seeded_delta(sc.seed ^ 0x00DE_17A5, sc.delta_edges, seq)
            .unwrap();
        mgr.apply_delta(&delta).unwrap();
        pins.push(mgr.current());
    }
    let oracle = LiveBackend::new(&mgr);
    assert!(!result.answered.is_empty(), "nothing survived to compare");
    for rec in &result.answered {
        let mut q = specs[rec.spec].clone();
        q.epoch = Some(EpochId(rec.epoch));
        match oracle.run_robust(&q).unwrap() {
            QueryOutcome::Exact(a) => assert_eq!(
                answer_sig(&a),
                rec.sig,
                "ticket {} (node {}, epoch {}) diverged from the single-node oracle",
                rec.ticket,
                rec.node,
                rec.epoch
            ),
            QueryOutcome::Degraded(_) => {
                panic!("oracle degraded on ticket {}", rec.ticket)
            }
        }
    }
    drop(pins);
}

/// Every arrival index appears exactly once across terminal outcomes
/// and rejections.
fn assert_exactly_one_outcome(result: &ClusterSimResult) {
    let mut seen: HashMap<u64, usize> = HashMap::new();
    for (t, _) in &result.terminal {
        *seen.entry(*t).or_default() += 1;
    }
    for (t, _) in &result.rejected {
        *seen.entry(*t).or_default() += 1;
    }
    assert_eq!(
        result.terminal.len() + result.rejected.len(),
        result.n_submissions,
        "terminal+rejected must cover every offered arrival"
    );
    for g in 0..result.n_submissions as u64 {
        assert_eq!(
            seen.get(&g).copied().unwrap_or(0),
            1,
            "arrival {g} must have exactly one terminal outcome"
        );
    }
}

#[test]
fn chaos_accounts_every_submission_and_reconciles() {
    let sc = ClusterScenario::chaos(11);
    let result = run_cluster_sim(&sc).unwrap();
    assert_exactly_one_outcome(&result);
    assert!(
        result.stats.reconciles(),
        "cluster stats must reconcile exactly: {:#?}",
        result.stats
    );
    assert_eq!(result.stats.crashes, 1);
    assert_eq!(result.stats.restarts, 1);
    assert_eq!(result.stats.deltas_applied, 2);
    assert!(result.n_shards >= 2, "partitioner produced a trivial map");
    // The crash cancelled queued work on the dead node.
    assert!(
        result
            .terminal
            .iter()
            .any(|(_, l)| l == "cancelled:Drained"),
        "crash drain should cancel queued tickets"
    );
}

#[test]
fn chaos_survivors_match_single_node_oracle() {
    let sc = ClusterScenario::chaos(11);
    let result = run_cluster_sim(&sc).unwrap();
    // Mid-run deltas must be represented among survivors, so the
    // oracle comparison spans more than the seed epoch.
    assert!(
        result.answered.iter().any(|r| r.epoch > 0),
        "no surviving answer from a post-delta epoch"
    );
    assert_answers_match_oracle(&sc, &result);
}

#[test]
fn chaos_replays_bit_identically_and_seeds_differ() {
    let a = run_cluster_sim(&ClusterScenario::chaos(11)).unwrap();
    let b = run_cluster_sim(&ClusterScenario::chaos(11)).unwrap();
    assert_eq!(a, b, "same seed must replay the whole run bit-exactly");
    let c = run_cluster_sim(&ClusterScenario::chaos(12)).unwrap();
    assert_ne!(a, c, "a different seed should produce a different run");
}

#[test]
fn chaos_exercises_the_robustness_machinery() {
    let result = run_cluster_sim(&ClusterScenario::chaos(11)).unwrap();
    let rpc = result
        .stats
        .nodes
        .iter()
        .fold(cluster::RpcCounters::default(), |mut acc, n| {
            acc.attempts += n.rpc.attempts;
            acc.retries += n.rpc.retries;
            acc.timeouts += n.rpc.timeouts;
            acc.peer_down += n.rpc.peer_down;
            acc.partition_drops += n.rpc.partition_drops;
            acc.breaker_skips += n.rpc.breaker_skips;
            acc.failovers += n.rpc.failovers;
            acc.shard_fetches += n.rpc.shard_fetches;
            acc.shard_unreachable += n.rpc.shard_unreachable;
            acc
        });
    assert!(rpc.attempts > 0, "no RPC traffic at all");
    assert!(rpc.shard_fetches > 0, "no cross-shard queries ran");
    assert!(rpc.timeouts > 0, "latency spikes never hit a timeout");
    assert!(rpc.retries > 0, "timeouts should trigger seeded retries");
    assert!(rpc.peer_down > 0, "the crash was never observed over RPC");
    assert!(
        rpc.failovers > 0,
        "no fetch failed over to a replica despite node loss"
    );
    assert!(
        result.stats.failover_latency.count() == rpc.failovers,
        "every failover must be recorded in the latency histogram"
    );
    assert!(
        result.stats.routed_failovers > 0,
        "admission routing never had to skip a dead primary"
    );
    assert_eq!(
        result.stats.bus.calls, rpc.attempts,
        "bus and node RPC accounting disagree"
    );
}

#[test]
fn node_loss_goodput_stays_above_half() {
    let sc = ClusterScenario::node_loss(5);
    let result = run_cluster_sim(&sc).unwrap();
    assert_exactly_one_outcome(&result);
    assert!(result.stats.reconciles());
    assert_eq!(result.stats.crashes, 1);
    assert_eq!(
        result.stats.restarts, 0,
        "the lost node must stay down for the whole run"
    );
    let goodput = result.goodput();
    assert!(
        (0.5..=1.0).contains(&goodput),
        "goodput {goodput:.3} outside [0.5, 1.0] with one node down \
         (executed {} over elapsed {} × {} nodes)",
        result.executed_units,
        result.elapsed,
        result.stats.nodes.len()
    );
    // Replication kept every shard reachable: survivors still answer
    // exactly, and they match the oracle.
    assert!(result.stats.answered > 0);
    assert_answers_match_oracle(&sc, &result);
}
