//! The deterministic cluster simulator: a sharded fleet of
//! [`QueryService`] nodes driven in virtual time from a single seed.
//!
//! One [`run_cluster_sim`] call owns the entire universe — network,
//! shard map, per-node epoch managers, the virtual bus, the fault
//! plan, the arrival schedule — and advances it with a single-threaded
//! driver: events (crashes, restarts, traffic deltas) and arrivals are
//! admitted when the *fleet clock* (minimum clock over live nodes)
//! reaches them, then the live node with queued work and the smallest
//! clock executes one query and advances its own clock by the query's
//! measured work units plus any RPC latency the query accrued. Every
//! decision is integer arithmetic on seeded draws, so two runs with
//! the same [`ClusterScenario`] produce bit-identical
//! [`ClusterSimResult`]s — the chaos suite's replay assertion.
//!
//! Crash-cancelled work is collected at the crash instant (a node that
//! dies resolves its queue to `cancelled:Drained`, exactly one
//! terminal outcome per admitted ticket, even posthumously), restarts
//! spawn a fresh service incarnation with fresh peer breakers, and
//! traffic deltas are applied to every node's manager in the same
//! order — including crashed nodes, standing in for the replicated
//! update log a real deployment replays on rejoin — so all replicas
//! stay in the same epoch chain and answers stay bit-comparable.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use allfp::service::{
    ArrivalSchedule, BreakerConfig, DrainMode, LatencyHistogram, ManualClock, Priority,
    QueryService, ServiceClock, ServiceConfig, ServiceOutcome, Submission,
};
use allfp::{
    AllFpAnswer, Engine, EngineConfig, EpochManager, EstimatorKind, LiveBackend, PathfindBackend,
    QuerySpec,
};
use pwl::time::hm;
use pwl::Interval;
use roadnet::generators::grid;
use roadnet::{NodeId, RoadNetwork};
use traffic::{DayCategory, RoadClass};

use crate::bus::{BusConfig, BusStats, ClusterFaultPlan, CrashWindow, PartitionWindow, VirtualBus};
use crate::node::{NodeBackend, RetryPolicy, RpcCounters};
use crate::shard::ShardMap;
use crate::ClusterError;

/// Deterministic 64-bit LCG (MMIX constants) — the same spec sampler
/// the single-node chaos harness uses, so cluster runs and oracle
/// runs draw identical workloads from identical seeds.
fn lcg(x: &mut u64) -> u64 {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *x
}

/// `n` seeded query specs over `net` (sources, targets, and morning
/// leaving intervals all drawn from `seed`).
pub fn sample_specs(net: &RoadNetwork, n: usize, seed: u64) -> Vec<QuerySpec> {
    let nodes = net.n_nodes() as u64;
    let mut x = seed ^ 0x0EE2_10AD;
    (0..n)
        .map(|_| {
            let s = NodeId((lcg(&mut x) % nodes) as u32);
            let e = loop {
                let c = NodeId((lcg(&mut x) % nodes) as u32);
                if c != s {
                    break c;
                }
            };
            let lo = hm(6, 30) + (lcg(&mut x) % 90) as f64;
            QuerySpec::new(s, e, Interval::of(lo, lo + 20.0), DayCategory::WORKDAY)
        })
        .collect()
}

/// A bit-exact signature of an answer: partition bounds (as raw f64
/// bits) plus the node sequence of each sub-interval's fastest path.
pub type AnswerSig = Vec<(u64, u64, Vec<usize>)>;

/// Compute the [`AnswerSig`] of an answer.
pub fn answer_sig(a: &AllFpAnswer) -> AnswerSig {
    a.partition
        .iter()
        .map(|(iv, pi)| {
            (
                iv.lo().to_bits(),
                iv.hi().to_bits(),
                a.paths[*pi].nodes.iter().map(|n| n.index()).collect(),
            )
        })
        .collect()
}

/// One scenario, in shape knobs; every absolute quantity (latencies,
/// cooldowns, fault instants) is derived inside [`run_cluster_sim`]
/// from the calibrated mean query cost and the arrival horizon, so a
/// scenario is meaningful at any network size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterScenario {
    /// Master seed; every random draw in the run derives from it.
    pub seed: u64,
    /// Grid network width (nodes).
    pub grid_w: usize,
    /// Grid network height (nodes).
    pub grid_h: usize,
    /// Simulated cluster nodes.
    pub n_sim_nodes: usize,
    /// Target shard count for the CCAM partitioner.
    pub target_shards: usize,
    /// Copies of each shard across the fleet.
    pub replication: usize,
    /// Distinct query specs the workload cycles through.
    pub n_specs: usize,
    /// Total submissions offered to the fleet.
    pub n_submissions: usize,
    /// Per-node admission queue bound.
    pub queue_capacity: usize,
    /// Offered load numerator: arrivals target `overload_num /
    /// overload_den` times the fleet's execution capacity.
    pub overload_num: u64,
    /// Offered load denominator.
    pub overload_den: u64,
    /// Deadline slack, in multiples of the calibrated mean query cost.
    pub deadline_factor: u64,
    /// RPC congestion-spike period (seeded, 0 disables spikes).
    pub spike_every: u64,
    /// Client-side RPC retries per host after the first attempt.
    pub max_retries: u32,
    /// Node outages as `(node, from, until)` in per-mille of the
    /// arrival horizon; `until ≥ 1000` means the node never returns.
    pub crash_windows_pm: Vec<(usize, u32, u32)>,
    /// Network partitions as `(from, until, island)` in per-mille of
    /// the arrival horizon.
    pub partition_windows_pm: Vec<(u32, u32, Vec<usize>)>,
    /// Traffic-delta publish instants in per-mille of the horizon.
    pub delta_times_pm: Vec<u32>,
    /// Directed edges each traffic delta repoints.
    pub delta_edges: usize,
}

impl ClusterScenario {
    /// The full storm: 4 nodes at 2× overload with RPC spikes, one
    /// mid-run node crash (with restart), a network partition
    /// isolating another node, and two live traffic deltas.
    pub fn chaos(seed: u64) -> Self {
        ClusterScenario {
            seed,
            grid_w: 8,
            grid_h: 8,
            n_sim_nodes: 4,
            target_shards: 8,
            replication: 2,
            n_specs: 12,
            n_submissions: 120,
            queue_capacity: 24,
            overload_num: 2,
            overload_den: 1,
            deadline_factor: 24,
            spike_every: 24,
            max_retries: 2,
            crash_windows_pm: vec![(2, 250, 550)],
            partition_windows_pm: vec![(600, 750, vec![3])],
            delta_times_pm: vec![330, 660],
            delta_edges: 12,
        }
    }

    /// The goodput gate: 3 nodes at 2× overload, one shard owner down
    /// from 20% of the horizon to the end, replication 2 so every
    /// shard keeps a live copy. No partitions, spikes, or deltas —
    /// the measured loss is node loss, nothing else.
    pub fn node_loss(seed: u64) -> Self {
        ClusterScenario {
            seed,
            grid_w: 8,
            grid_h: 8,
            n_sim_nodes: 3,
            target_shards: 6,
            replication: 2,
            n_specs: 12,
            n_submissions: 90,
            queue_capacity: 24,
            overload_num: 2,
            overload_den: 1,
            deadline_factor: 24,
            spike_every: 0,
            max_retries: 2,
            crash_windows_pm: vec![(1, 200, 1000)],
            partition_windows_pm: vec![],
            delta_times_pm: vec![],
            delta_edges: 0,
        }
    }

    /// Fault-free cluster at moderate load: the equivalence baseline
    /// (every answer must be exact and bit-identical to the flat
    /// single-node pipeline).
    pub fn calm(seed: u64) -> Self {
        ClusterScenario {
            seed,
            grid_w: 8,
            grid_h: 8,
            n_sim_nodes: 3,
            target_shards: 6,
            replication: 2,
            n_specs: 16,
            n_submissions: 64,
            queue_capacity: 64,
            overload_num: 1,
            overload_den: 1,
            deadline_factor: 64,
            spike_every: 0,
            max_retries: 2,
            crash_windows_pm: vec![],
            partition_windows_pm: vec![],
            delta_times_pm: vec![],
            delta_edges: 0,
        }
    }
}

/// Per-node roll-up across every service incarnation, plus the node's
/// RPC and epoch counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeTotals {
    /// Simulated node id.
    pub node: usize,
    /// Service incarnations this node ran (1 + restarts).
    pub incarnations: u64,
    /// Submissions offered to this node.
    pub submitted: u64,
    /// Submissions admitted.
    pub admitted: u64,
    /// Submissions rejected at admission.
    pub rejected: u64,
    /// Admitted queries answered exactly.
    pub answered: u64,
    /// Admitted queries that degraded (budget or shard-unreachable
    /// fallback).
    pub degraded: u64,
    /// Subset of `degraded` served from the constant-speed fallback
    /// for storage/shard health.
    pub breaker_fallbacks: u64,
    /// Admitted queries that failed hard.
    pub failed: u64,
    /// Admitted queries cancelled (sheds, crash drains).
    pub cancelled: u64,
    /// Subset of `cancelled` shed past deadline.
    pub shed: u64,
    /// RPC-side accounting.
    pub rpc: RpcCounters,
    /// Per-peer circuit-breaker trips.
    pub breaker_trips: u64,
    /// Epochs published by this node's manager (seed epoch included).
    pub epochs_published: u64,
    /// Traffic deltas this node's manager applied.
    pub updates_applied: u64,
}

impl NodeTotals {
    /// The per-node accounting identities: every submission offered to
    /// this node across all its incarnations is accounted exactly
    /// once, and its epoch chain is the seed epoch plus one epoch per
    /// applied delta.
    pub fn reconciles(&self) -> bool {
        self.submitted == self.admitted + self.rejected
            && self.admitted == self.answered + self.degraded + self.failed + self.cancelled
            && self.shed <= self.cancelled
            && self.breaker_fallbacks <= self.degraded
            && self.epochs_published == self.updates_applied + 1
    }
}

/// Fleet-wide accounting for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterStats {
    /// Per-node roll-ups.
    pub nodes: Vec<NodeTotals>,
    /// Arrivals the scenario offered to the fleet.
    pub offered: u64,
    /// Arrivals that reached some node's `submit` (offered −
    /// unroutable).
    pub submitted: u64,
    /// Fleet sum of admitted.
    pub admitted: u64,
    /// Fleet sum of node-level admission rejections.
    pub rejected: u64,
    /// Fleet sum of exact answers.
    pub answered: u64,
    /// Fleet sum of degraded answers.
    pub degraded: u64,
    /// Fleet sum of hard failures.
    pub failed: u64,
    /// Fleet sum of cancellations.
    pub cancelled: u64,
    /// Arrivals with no live node to route to.
    pub unroutable: u64,
    /// Node crashes injected.
    pub crashes: u64,
    /// Node restarts processed.
    pub restarts: u64,
    /// Arrivals routed past the primary shard owner to a replica (or
    /// to a non-owner when no owner was live).
    pub routed_failovers: u64,
    /// Traffic deltas published during the run.
    pub deltas_applied: u64,
    /// Wasted-work latency of every in-query replica failover.
    pub failover_latency: LatencyHistogram,
    /// Virtual bus accounting.
    pub bus: BusStats,
}

impl ClusterStats {
    /// The exact fleet-level identities: per-node counters reconcile,
    /// fleet counters are the node sums, and every offered arrival is
    /// accounted exactly once (`offered = submitted + unroutable`,
    /// `submitted = admitted + rejected`,
    /// `admitted = answered + degraded + failed + cancelled`).
    pub fn reconciles(&self) -> bool {
        let sum = |f: fn(&NodeTotals) -> u64| self.nodes.iter().map(f).sum::<u64>();
        self.nodes.iter().all(NodeTotals::reconciles)
            && self.submitted == sum(|n| n.submitted)
            && self.admitted == sum(|n| n.admitted)
            && self.rejected == sum(|n| n.rejected)
            && self.answered == sum(|n| n.answered)
            && self.degraded == sum(|n| n.degraded)
            && self.failed == sum(|n| n.failed)
            && self.cancelled == sum(|n| n.cancelled)
            && self.offered == self.submitted + self.unroutable
            && self.submitted == self.admitted + self.rejected
            && self.admitted == self.answered + self.degraded + self.failed + self.cancelled
    }
}

/// One exact answer with everything needed to check it against a
/// single-node oracle: which spec, which epoch, and the bit-exact
/// signature.
#[derive(Debug, Clone, PartialEq)]
pub struct AnsweredRecord {
    /// Global ticket (arrival index).
    pub ticket: u64,
    /// Node that answered.
    pub node: usize,
    /// Index into the scenario's spec cycle.
    pub spec: usize,
    /// Epoch the query was pinned to at admission.
    pub epoch: u64,
    /// Bit-exact answer signature.
    pub sig: AnswerSig,
}

/// Everything one cluster run produced, in a `PartialEq` shape so two
/// runs compare wholesale (the replay assertion).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSimResult {
    /// `(global ticket, kind[:reason])` in collection order.
    pub terminal: Vec<(u64, String)>,
    /// `(global ticket, rejection reason)` for admission rejections
    /// and unroutable arrivals, in arrival order.
    pub rejected: Vec<(u64, String)>,
    /// Every exact answer, with its oracle-checkable provenance.
    pub answered: Vec<AnsweredRecord>,
    /// Fleet accounting.
    pub stats: ClusterStats,
    /// Work units executed across all nodes (RPC wait excluded).
    pub executed_units: u64,
    /// Final virtual time (max clock across the fleet).
    pub elapsed: u64,
    /// Arrivals offered.
    pub n_submissions: usize,
    /// Shards the partitioner actually produced.
    pub n_shards: usize,
    /// Calibrated mean query cost (work units).
    pub mean_cost: u64,
}

impl ClusterSimResult {
    /// Useful work per unit of fleet capacity: executed work units
    /// over `elapsed × n_sim_nodes`. Capacity lost to crashed-node
    /// downtime, RPC waiting, and degraded fallbacks all depress it.
    pub fn goodput(&self) -> f64 {
        if self.elapsed == 0 {
            return 1.0;
        }
        self.executed_units as f64 / (self.elapsed as f64 * self.stats.nodes.len() as f64)
    }
}

/// Internal accumulator over one node's service incarnations.
#[derive(Debug, Clone, Copy, Default)]
struct NodeAccum {
    incarnations: u64,
    submitted: u64,
    admitted: u64,
    rejected: u64,
    answered: u64,
    degraded: u64,
    breaker_fallbacks: u64,
    failed: u64,
    cancelled: u64,
    shed: u64,
}

/// Scheduled simulator events, processed in `(time, rank, node)`
/// order before any arrival at the same instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    Crash(usize),
    Restart(usize),
    Delta,
}

#[derive(Debug, Clone, Copy)]
struct Event {
    t: u64,
    rank: u8,
    kind: EventKind,
}

/// A fresh service incarnation for `backend`.
fn spawn_service<'a>(
    backend: &'a NodeBackend,
    fallback: &'a Engine<'a, RoadNetwork>,
    cfg: &ServiceConfig,
) -> QueryService<'a, NodeBackend> {
    QueryService::new(backend, backend.clock(), cfg.clone())
        .with_fallback(fallback)
        .with_epochs(backend.manager())
}

/// Absorb a finished (or crashed) service incarnation: accumulate its
/// stats and translate its local outcomes to global tickets.
#[allow(clippy::too_many_arguments)]
fn collect_service(
    node: usize,
    svc: &QueryService<'_, NodeBackend>,
    tickets: &mut HashMap<u64, u64>,
    acc: &mut NodeAccum,
    terminal: &mut Vec<(u64, String)>,
    answered: &mut Vec<AnsweredRecord>,
    n_specs: usize,
    epoch_of: &[u64],
) {
    let st = svc.stats();
    acc.incarnations += 1;
    acc.submitted += st.submitted;
    acc.admitted += st.admitted;
    acc.rejected += st.rejected;
    acc.answered += st.answered;
    acc.degraded += st.degraded;
    acc.breaker_fallbacks += st.breaker_fallbacks;
    acc.failed += st.failed;
    acc.cancelled += st.cancelled;
    acc.shed += st.shed;
    for (local, out) in svc.take_outcomes() {
        let Some(&global) = tickets.get(&local) else {
            continue;
        };
        let label = match &out {
            ServiceOutcome::Answered(_) => "answered".to_string(),
            ServiceOutcome::Degraded(d) => format!("degraded:{:?}", d.reason),
            ServiceOutcome::Cancelled(r) => format!("cancelled:{r:?}"),
            ServiceOutcome::Failed(_) => "failed".to_string(),
        };
        terminal.push((global, label));
        if let ServiceOutcome::Answered(a) = &out {
            answered.push(AnsweredRecord {
                ticket: global,
                node,
                spec: (global as usize) % n_specs,
                epoch: epoch_of[global as usize],
                sig: answer_sig(a),
            });
        }
    }
    tickets.clear();
}

/// Run one full cluster scenario in virtual time. Pure function of
/// the scenario (replay-exact); see the module docs for the driver's
/// scheduling rules.
pub fn run_cluster_sim(sc: &ClusterScenario) -> Result<ClusterSimResult, ClusterError> {
    if sc.n_sim_nodes == 0 || sc.n_specs == 0 {
        return Err(ClusterError::Config(
            "scenario needs at least one node and one spec".into(),
        ));
    }
    let net = grid(sc.grid_w, sc.grid_h, 0.3, RoadClass::LocalBoston)?;
    let specs = sample_specs(&net, sc.n_specs, sc.seed);
    let config = EngineConfig {
        estimator: EstimatorKind::BoundaryPartitioned {
            groups: sc.target_shards,
        },
        ..EngineConfig::default()
    };

    // Calibrate per-spec costs on a manager-built backend — the same
    // estimator stack the cluster nodes run, so cost hints and
    // capacity planning see the real work.
    let calib_mgr = EpochManager::new(net.clone(), config.clone())?;
    let calib = LiveBackend::new(&calib_mgr);
    let costs = specs
        .iter()
        .map(|q| {
            calib
                .all_fastest_paths(q)
                .map(|a| (a.stats.expanded_paths as u64).max(1))
        })
        .collect::<Result<Vec<u64>, _>>()?;
    let mean_cost = (costs.iter().sum::<u64>() / costs.len() as u64).max(1);

    let shards = Arc::new(ShardMap::build(
        &net,
        sc.target_shards,
        sc.n_sim_nodes,
        sc.replication,
    )?);

    // Offered load: fleet capacity is n nodes × 1 work unit per clock
    // unit, so a mean gap of `mean_cost · den / (num · n)` offers
    // `num/den` times capacity.
    let gap = (mean_cost * sc.overload_den / (sc.overload_num * sc.n_sim_nodes as u64)).max(1);
    let schedule = ArrivalSchedule::open_loop(sc.seed ^ 0xA11F_0AD5, sc.n_submissions, gap);
    let horizon = schedule.times().last().copied().unwrap_or(1).max(1);
    let pm = |p: u32| horizon.saturating_mul(u64::from(p)) / 1000;

    let plan = ClusterFaultPlan {
        crashes: sc
            .crash_windows_pm
            .iter()
            .map(|&(node, f, u)| CrashWindow {
                node,
                from: pm(f),
                until: if u >= 1000 { u64::MAX } else { pm(u) },
            })
            .collect(),
        partitions: sc
            .partition_windows_pm
            .iter()
            .map(|(f, u, island)| PartitionWindow {
                from: pm(*f),
                until: if *u >= 1000 { u64::MAX } else { pm(*u) },
                island: island.clone(),
            })
            .collect(),
    };
    let bus_cfg = BusConfig {
        base_latency: (mean_cost / 16).max(1),
        jitter: (mean_cost / 16).max(1),
        spike_every: sc.spike_every,
        // Sized so any spike overshoots the timeout: the client burns
        // the timeout and retries, never waits out the spike.
        spike_latency: mean_cost * 2,
        timeout: (mean_cost / 2).max(2),
    };
    let bus = Rc::new(VirtualBus::new(
        sc.seed ^ 0x0B05_CA11,
        bus_cfg,
        plan.clone(),
    ));
    let failover_hist = Rc::new(RefCell::new(LatencyHistogram::default()));
    let retry = RetryPolicy {
        max_retries: sc.max_retries,
        backoff_base: (mean_cost / 32).max(2),
    };

    let mut backends = Vec::with_capacity(sc.n_sim_nodes);
    for id in 0..sc.n_sim_nodes {
        let manager = EpochManager::new(net.clone(), config.clone())?;
        let breaker_cfg = BreakerConfig {
            window: 8,
            trip_failures: 3,
            cooldown: mean_cost * 2,
            probe_successes: 1,
            // Seeded per-node probe jitter: recovering nodes across
            // the fleet de-lockstep their half-open probes.
            probe_jitter: mean_cost,
            probe_seed: sc.seed ^ (id as u64).wrapping_mul(0xA076_1D64_78BD_642F),
        };
        backends.push(NodeBackend::new(
            id,
            manager,
            Arc::clone(&shards),
            Rc::clone(&bus),
            Rc::new(ManualClock::new()),
            breaker_cfg,
            retry,
            Rc::clone(&failover_hist),
        ));
    }

    // The degraded-path fallback: constant-speed answers over the seed
    // network, shared by every node (replicated read-only data).
    let fallback = Engine::new(&net, EngineConfig::default());
    let svc_cfg = ServiceConfig {
        queue_capacity: sc.queue_capacity,
        shed_expired: true,
        default_cost: mean_cost,
        initial_units_per_cost: 1.0,
        breaker: BreakerConfig {
            cooldown: mean_cost * 4,
            ..BreakerConfig::default()
        },
    };

    let mut events: Vec<Event> = Vec::new();
    for c in &plan.crashes {
        events.push(Event {
            t: c.from,
            rank: 0,
            kind: EventKind::Crash(c.node),
        });
        if c.until != u64::MAX {
            events.push(Event {
                t: c.until,
                rank: 1,
                kind: EventKind::Restart(c.node),
            });
        }
    }
    for &tpm in &sc.delta_times_pm {
        events.push(Event {
            t: pm(tpm),
            rank: 2,
            kind: EventKind::Delta,
        });
    }
    events.sort_by_key(|e| {
        (
            e.t,
            e.rank,
            match e.kind {
                EventKind::Crash(n) | EventKind::Restart(n) => n,
                EventKind::Delta => usize::MAX,
            },
        )
    });

    let n = sc.n_sim_nodes;
    let mut services: Vec<Option<QueryService<'_, NodeBackend>>> = backends
        .iter()
        .map(|b| Some(spawn_service(b, &fallback, &svc_cfg)))
        .collect();
    let mut tickets: Vec<HashMap<u64, u64>> = vec![HashMap::new(); n];
    let mut accum: Vec<NodeAccum> = vec![NodeAccum::default(); n];
    let mut epoch_of = vec![0u64; sc.n_submissions];
    let mut terminal: Vec<(u64, String)> = Vec::new();
    let mut rejected: Vec<(u64, String)> = Vec::new();
    let mut answered: Vec<AnsweredRecord> = Vec::new();
    let mut executed_units = 0u64;
    let (mut crashes, mut restarts, mut routed_failovers, mut unroutable, mut deltas_applied) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    let times = schedule.times();
    let mut next_arr = 0usize;
    let mut next_ev = 0usize;

    loop {
        let fleet = (0..n)
            .filter(|&i| services[i].is_some())
            .map(|i| backends[i].clock().now())
            .min();

        // Events first at any instant: a node that crashes at t does
        // not receive the arrival at t.
        if let Some(e) = events.get(next_ev).copied() {
            if fleet.is_none_or(|f| e.t <= f) {
                match e.kind {
                    EventKind::Crash(node) => {
                        if let Some(svc) = services[node].take() {
                            svc.begin_drain(DrainMode::Cancel);
                            collect_service(
                                node,
                                &svc,
                                &mut tickets[node],
                                &mut accum[node],
                                &mut terminal,
                                &mut answered,
                                specs.len(),
                                &epoch_of,
                            );
                            crashes += 1;
                        }
                    }
                    EventKind::Restart(node) => {
                        if services[node].is_none() && !plan.is_down(node, e.t) {
                            backends[node].clock().set(e.t);
                            backends[node].reset_peers();
                            services[node] =
                                Some(spawn_service(&backends[node], &fallback, &svc_cfg));
                            restarts += 1;
                        }
                    }
                    EventKind::Delta => {
                        deltas_applied += 1;
                        let delta = backends[0].manager().current().network().seeded_delta(
                            sc.seed ^ 0x00DE_17A5,
                            sc.delta_edges,
                            deltas_applied,
                        )?;
                        // Every manager — crashed nodes included (the
                        // replicated update log a rejoiner replays) —
                        // applies the same delta in the same order.
                        for b in &backends {
                            b.manager().apply_delta(&delta)?;
                        }
                    }
                }
                next_ev += 1;
                continue;
            }
        }

        if let Some(&t) = times.get(next_arr) {
            if fleet.is_none_or(|f| t <= f) {
                let global = next_arr as u64;
                let idx = next_arr % specs.len();
                let shard = shards.shard_of(specs[idx].source);
                let primary = shards.primary(shard);
                let owner = shards.hosts(shard).find(|&h| services[h].is_some());
                let target = match owner {
                    Some(h) => {
                        if h != primary {
                            routed_failovers += 1;
                        }
                        Some(h)
                    }
                    None => {
                        // No live owner: any live node takes it and
                        // (likely) degrades through the unreachable-
                        // shard path rather than dropping the query.
                        let any = (0..n).find(|&i| services[i].is_some());
                        if any.is_some() {
                            routed_failovers += 1;
                        }
                        any
                    }
                };
                match target {
                    Some(node) => {
                        if let Some(svc) = services[node].as_ref() {
                            let now = backends[node].clock().now();
                            let sub = Submission::new(specs[idx].clone())
                                .with_class(if next_arr % 4 == 3 {
                                    Priority::Batch
                                } else {
                                    Priority::Interactive
                                })
                                .with_deadline(now + sc.deadline_factor * mean_cost)
                                .with_cost_hint(costs[idx]);
                            match svc.submit(sub) {
                                Ok(local) => {
                                    tickets[node].insert(local, global);
                                    epoch_of[next_arr] = backends[node].manager().current_id().0;
                                }
                                Err(o) => rejected.push((global, format!("{:?}", o.reason))),
                            }
                        }
                    }
                    None => {
                        unroutable += 1;
                        rejected.push((global, "Unroutable".to_string()));
                    }
                }
                next_arr += 1;
                continue;
            }
        }

        // Step the live node with queued work and the smallest clock.
        let mut pick: Option<(u64, usize)> = None;
        for i in 0..n {
            if let Some(svc) = services[i].as_ref() {
                if svc.queue_depth() > 0 {
                    let key = (backends[i].clock().now(), i);
                    if pick.is_none_or(|p| key < p) {
                        pick = Some(key);
                    }
                }
            }
        }
        match pick {
            Some((_, i)) => {
                if let Some(svc) = services[i].as_ref() {
                    if let Some(rep) = svc.step() {
                        executed_units += rep.cost;
                        backends[i]
                            .clock()
                            .advance(rep.cost + backends[i].take_accrued());
                    } else {
                        // The whole queue was shed; charge any RPC
                        // residue and move on.
                        backends[i].clock().advance(backends[i].take_accrued());
                    }
                }
            }
            None => {
                // All live nodes idle: jump the fleet to the next
                // arrival or event, or finish.
                let next_t = match (events.get(next_ev).map(|e| e.t), times.get(next_arr)) {
                    (Some(a), Some(&b)) => Some(a.min(b)),
                    (Some(a), None) => Some(a),
                    (None, Some(&b)) => Some(b),
                    (None, None) => None,
                };
                match next_t {
                    Some(t) => {
                        for i in 0..n {
                            if services[i].is_some() {
                                backends[i].clock().set(t);
                            }
                        }
                    }
                    None => break,
                }
            }
        }
    }

    // Graceful end-of-run drain, then collect every surviving
    // incarnation.
    for i in 0..n {
        if let Some(svc) = services[i].as_ref() {
            svc.begin_drain(DrainMode::Finish);
            while let Some(rep) = svc.step() {
                executed_units += rep.cost;
                backends[i]
                    .clock()
                    .advance(rep.cost + backends[i].take_accrued());
            }
        }
    }
    for i in 0..n {
        if let Some(svc) = services[i].take() {
            collect_service(
                i,
                &svc,
                &mut tickets[i],
                &mut accum[i],
                &mut terminal,
                &mut answered,
                specs.len(),
                &epoch_of,
            );
        }
    }

    let nodes: Vec<NodeTotals> = (0..n)
        .map(|i| {
            let a = &accum[i];
            let es = backends[i].manager().stats();
            NodeTotals {
                node: i,
                incarnations: a.incarnations,
                submitted: a.submitted,
                admitted: a.admitted,
                rejected: a.rejected,
                answered: a.answered,
                degraded: a.degraded,
                breaker_fallbacks: a.breaker_fallbacks,
                failed: a.failed,
                cancelled: a.cancelled,
                shed: a.shed,
                rpc: backends[i].rpc_counters(),
                breaker_trips: backends[i].breaker_trips(),
                epochs_published: es.epochs_published,
                updates_applied: es.updates_applied,
            }
        })
        .collect();
    let sum = |f: fn(&NodeTotals) -> u64| nodes.iter().map(f).sum::<u64>();
    let stats = ClusterStats {
        offered: sc.n_submissions as u64,
        submitted: sum(|x| x.submitted),
        admitted: sum(|x| x.admitted),
        rejected: sum(|x| x.rejected),
        answered: sum(|x| x.answered),
        degraded: sum(|x| x.degraded),
        failed: sum(|x| x.failed),
        cancelled: sum(|x| x.cancelled),
        unroutable,
        crashes,
        restarts,
        routed_failovers,
        deltas_applied,
        failover_latency: failover_hist.borrow().clone(),
        bus: bus.stats(),
        nodes,
    };
    let elapsed = backends.iter().map(|b| b.clock().now()).max().unwrap_or(0);
    Ok(ClusterSimResult {
        terminal,
        rejected,
        answered,
        stats,
        executed_units,
        elapsed,
        n_submissions: sc.n_submissions,
        n_shards: shards.n_shards(),
        mean_cost,
    })
}
