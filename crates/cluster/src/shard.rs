//! Shard map: which simulated node owns which graph partition.
//!
//! The map is derived from [`ccam::partition_assignment`] — the same
//! connectivity-clustered partitioner the boundary estimator shards
//! by — so the serving tier and the interface-graph contract agree on
//! partition boundaries by construction. Every cluster node computes
//! the map independently from the same network and, because the
//! partitioner is byte-deterministic (property-tested in
//! `crates/ccam/tests/partition_props.rs`), they all agree without any
//! coordination traffic.

use roadnet::{NodeId, RoadNetwork};

use crate::ClusterError;

/// The cluster's routing table: graph node → shard, shard → hosting
/// simulated nodes (primary first, then replicas in deterministic
/// rotation order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    /// Shard id of every graph node, indexed by `NodeId::index()`.
    shard_of: Vec<u32>,
    /// Number of shards (dense ids `0..n_shards`).
    n_shards: usize,
    /// Number of simulated cluster nodes.
    n_sim_nodes: usize,
    /// Copies of each shard (primary + replicas), clamped to the
    /// cluster size.
    replication: usize,
}

impl ShardMap {
    /// Partition `net` into about `target_shards` shards and assign
    /// each shard to `replication` of the `n_sim_nodes` simulated
    /// nodes by deterministic rotation.
    pub fn build(
        net: &RoadNetwork,
        target_shards: usize,
        n_sim_nodes: usize,
        replication: usize,
    ) -> Result<ShardMap, ClusterError> {
        if n_sim_nodes == 0 {
            return Err(ClusterError::Config(
                "cluster needs at least one node".into(),
            ));
        }
        let (shard_of, n_shards) = ccam::partition_assignment(net, target_shards)?;
        Ok(ShardMap {
            shard_of,
            n_shards,
            n_sim_nodes,
            replication: replication.clamp(1, n_sim_nodes),
        })
    }

    /// Shard owning graph node `n`.
    pub fn shard_of(&self, n: NodeId) -> u32 {
        self.shard_of[n.index()]
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Number of simulated cluster nodes.
    pub fn n_sim_nodes(&self) -> usize {
        self.n_sim_nodes
    }

    /// Effective replication factor (clamped to the cluster size).
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// The simulated nodes hosting `shard`, primary first. The k-th
    /// copy of shard `s` lives on node `(s + k) mod n_sim_nodes` —
    /// a rotation, so load spreads and any two nodes share some
    /// shards but not all.
    pub fn hosts(&self, shard: u32) -> impl Iterator<Item = usize> + '_ {
        let s = shard as usize;
        let n = self.n_sim_nodes;
        (0..self.replication).map(move |k| (s + k) % n)
    }

    /// Primary owner of `shard`.
    pub fn primary(&self, shard: u32) -> usize {
        shard as usize % self.n_sim_nodes
    }

    /// Does simulated node `sim_node` hold a local copy of `shard`?
    pub fn is_resident(&self, sim_node: usize, shard: u32) -> bool {
        self.hosts(shard).any(|h| h == sim_node)
    }

    /// The raw assignment vector (shard id per graph node) — what a
    /// real deployment would serialize into its routing envelopes.
    pub fn assignment(&self) -> &[u32] {
        &self.shard_of
    }
}
