//! The virtual message bus: seeded, integer-time RPC delivery with an
//! injected fault plan.
//!
//! Nothing here touches wall clocks or OS networking. An RPC's fate —
//! delivered (with what latency), timed out, refused because the peer
//! is crashed, or dropped by a network partition — is a pure function
//! of `(bus seed, call index, virtual send time, fault plan)`, so an
//! entire cluster run replays bit-identically from its scenario seed.

use std::cell::{Cell, RefCell};

/// SplitMix64 — the same finalizer the service layer uses for its
/// seeded jitter, reproduced here so the bus stays self-contained.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One injected node outage: `node` is unreachable (and not serving)
/// for virtual times `from..until`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashWindow {
    /// The simulated node that crashes.
    pub node: usize,
    /// Crash instant (inclusive).
    pub from: u64,
    /// Restart instant (exclusive) — the node is back at `until`.
    pub until: u64,
}

/// One injected network partition: during `from..until`, nodes inside
/// `island` cannot exchange RPCs with nodes outside it (island-local
/// and mainland-local traffic still flows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionWindow {
    /// Partition start (inclusive).
    pub from: u64,
    /// Partition end (exclusive).
    pub until: u64,
    /// The minority side of the split.
    pub island: Vec<usize>,
}

/// The full injected-fault schedule of one scenario.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterFaultPlan {
    /// Node outages.
    pub crashes: Vec<CrashWindow>,
    /// Network partitions.
    pub partitions: Vec<PartitionWindow>,
}

impl ClusterFaultPlan {
    /// Is `node` crashed at virtual time `t`?
    pub fn is_down(&self, node: usize, t: u64) -> bool {
        self.crashes
            .iter()
            .any(|c| c.node == node && (c.from..c.until).contains(&t))
    }

    /// Are `a` and `b` on opposite sides of an active partition at
    /// virtual time `t`?
    pub fn partitioned(&self, a: usize, b: usize, t: u64) -> bool {
        self.partitions.iter().any(|p| {
            (p.from..p.until).contains(&t) && (p.island.contains(&a) != p.island.contains(&b))
        })
    }
}

/// Bus latency and timeout tuning, in virtual clock units.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusConfig {
    /// Minimum one-way RPC latency.
    pub base_latency: u64,
    /// Maximum seeded jitter added on top of `base_latency`.
    pub jitter: u64,
    /// Every `spike_every`-th draw (seeded, on average) suffers a
    /// congestion spike of `spike_latency` extra units; `0` disables
    /// spikes.
    pub spike_every: u64,
    /// Extra latency of a congestion spike (sized above `timeout` to
    /// force client-side retries).
    pub spike_latency: u64,
    /// Client-side RPC timeout: a call whose latency exceeds this is
    /// reported [`RpcOutcome::TimedOut`] after `timeout` units.
    pub timeout: u64,
}

impl Default for BusConfig {
    fn default() -> Self {
        BusConfig {
            base_latency: 2,
            jitter: 4,
            spike_every: 0,
            spike_latency: 0,
            timeout: 64,
        }
    }
}

/// What happened to one simulated RPC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcOutcome {
    /// Delivered and answered after `latency` virtual units.
    Delivered {
        /// Round-trip latency in virtual clock units.
        latency: u64,
    },
    /// The reply did not arrive within [`BusConfig::timeout`]; the
    /// caller burned the full timeout waiting.
    TimedOut,
    /// The peer is crashed — fails fast (connection refused).
    PeerDown,
    /// An active network partition separates caller and peer; the
    /// caller cannot distinguish this from a slow peer and burns the
    /// full timeout.
    Partitioned,
}

/// Fleet-wide bus accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusStats {
    /// RPCs attempted.
    pub calls: u64,
    /// RPCs delivered.
    pub delivered: u64,
    /// RPCs lost to latency spikes past the timeout.
    pub timeouts: u64,
    /// RPCs refused because the peer was crashed.
    pub peer_down: u64,
    /// RPCs dropped by an active partition.
    pub partitioned: u64,
}

/// The deterministic virtual bus shared by every simulated node.
#[derive(Debug)]
pub struct VirtualBus {
    seed: u64,
    cfg: BusConfig,
    plan: ClusterFaultPlan,
    calls: Cell<u64>,
    stats: RefCell<BusStats>,
}

impl VirtualBus {
    /// A bus with the given seed, tuning, and injected-fault schedule.
    pub fn new(seed: u64, cfg: BusConfig, plan: ClusterFaultPlan) -> Self {
        VirtualBus {
            seed,
            cfg,
            plan,
            calls: Cell::new(0),
            stats: RefCell::new(BusStats::default()),
        }
    }

    /// The bus tuning.
    pub fn config(&self) -> &BusConfig {
        &self.cfg
    }

    /// The injected-fault schedule.
    pub fn plan(&self) -> &ClusterFaultPlan {
        &self.plan
    }

    /// Snapshot of the bus counters.
    pub fn stats(&self) -> BusStats {
        *self.stats.borrow()
    }

    /// Attempt one RPC from `from` to `to` at virtual time `now`.
    /// Consumes one seeded draw per call, so outcomes depend only on
    /// the global call order — which the single-threaded driver makes
    /// deterministic.
    pub fn call(&self, from: usize, to: usize, now: u64) -> RpcOutcome {
        let n = self.calls.get();
        self.calls.set(n + 1);
        let mut st = self.stats.borrow_mut();
        st.calls += 1;
        if self.plan.is_down(to, now) {
            st.peer_down += 1;
            return RpcOutcome::PeerDown;
        }
        if self.plan.partitioned(from, to, now) {
            st.partitioned += 1;
            return RpcOutcome::Partitioned;
        }
        let r = self.draw(n);
        let mut latency = self.cfg.base_latency + r % (self.cfg.jitter + 1);
        if self.cfg.spike_every > 0 && splitmix64(r).is_multiple_of(self.cfg.spike_every) {
            latency += self.cfg.spike_latency;
        }
        if latency > self.cfg.timeout {
            st.timeouts += 1;
            RpcOutcome::TimedOut
        } else {
            st.delivered += 1;
            RpcOutcome::Delivered { latency }
        }
    }

    /// The `n`-th seeded draw.
    fn draw(&self, n: u64) -> u64 {
        splitmix64(self.seed ^ n.wrapping_mul(0x9E6C_63D0_876A_3F35))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_windows() {
        let plan = ClusterFaultPlan {
            crashes: vec![CrashWindow {
                node: 1,
                from: 10,
                until: 20,
            }],
            partitions: vec![PartitionWindow {
                from: 5,
                until: 15,
                island: vec![2],
            }],
        };
        assert!(!plan.is_down(1, 9));
        assert!(plan.is_down(1, 10));
        assert!(plan.is_down(1, 19));
        assert!(!plan.is_down(1, 20));
        assert!(!plan.is_down(0, 15));
        // Island node 2 vs mainland node 0: separated only inside the window.
        assert!(plan.partitioned(0, 2, 5));
        assert!(plan.partitioned(2, 0, 14));
        assert!(!plan.partitioned(0, 2, 15));
        // Mainland-to-mainland traffic flows throughout.
        assert!(!plan.partitioned(0, 1, 10));
    }

    #[test]
    fn bus_is_deterministic_and_seed_sensitive() {
        let cfg = BusConfig {
            spike_every: 4,
            spike_latency: 100,
            ..BusConfig::default()
        };
        let run = |seed: u64| {
            let bus = VirtualBus::new(seed, cfg.clone(), ClusterFaultPlan::default());
            (0..64).map(|i| bus.call(0, 1, i)).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7), "same seed must replay the same RPC fates");
        assert_ne!(run(7), run(8), "different seeds should diverge");
        let outcomes = run(7);
        assert!(outcomes
            .iter()
            .any(|o| matches!(o, RpcOutcome::Delivered { .. })));
        assert!(
            outcomes.iter().any(|o| matches!(o, RpcOutcome::TimedOut)),
            "spikes above the timeout should surface as client timeouts"
        );
    }
}
