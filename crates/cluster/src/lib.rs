//! Partition-sharded cluster serving in deterministic simulation.
//!
//! This crate scales the serving tier *out* the way `fp-ccam` scaled
//! storage *down*: the road network is partitioned by the same
//! connectivity-clustered partitioner the boundary estimator uses
//! ([`ccam::partition_assignment`]), each shard is owned (with
//! replicas) by a simulated cluster node running a full
//! [`allfp::service::QueryService`] stack, and queries route to shard
//! owners over a seeded virtual message bus — all inside one process,
//! in virtual time, bit-replayable from a single seed.
//!
//! The pieces:
//!
//! * [`ShardMap`] ([`shard`]) — graph node → shard → hosting nodes,
//!   derived deterministically so every node agrees without
//!   coordination;
//! * [`VirtualBus`] ([`bus`]) — seeded RPC delivery with latency
//!   jitter, congestion spikes, timeouts, and an injected fault plan
//!   of node crashes and network partitions;
//! * [`NodeBackend`] ([`node`]) — one node's engine stack: an epoch
//!   manager over the replicated network, per-peer circuit breakers
//!   (the service layer's three-state machine with seeded half-open
//!   probe jitter), bounded retry with backoff, and replica failover
//!   for fetching non-resident shards;
//! * [`run_cluster_sim`] ([`sim`]) — the single-threaded virtual-time
//!   driver: overload arrivals, crash/restart/delta events, min-clock
//!   scheduling, and fleet-wide accounting that reconciles exactly.
//!
//! The load-bearing property, chaos-tested in
//! `tests/cluster_chaos.rs` and `tests/cluster_equivalence.rs`: a
//! query that survives (is `Answered`) is **bit-identical** to the
//! flat single-node pipeline's answer on the same epoch — node loss,
//! partitions, retries, and failovers can delay or degrade a query
//! but can never change a byte of an exact answer.

#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod bus;
pub mod node;
pub mod shard;
pub mod sim;

pub use bus::{
    BusConfig, BusStats, ClusterFaultPlan, CrashWindow, PartitionWindow, RpcOutcome, VirtualBus,
};
pub use node::{ClusterSource, NodeBackend, RetryPolicy, RpcCounters};
pub use shard::ShardMap;
pub use sim::{
    answer_sig, run_cluster_sim, sample_specs, AnswerSig, AnsweredRecord, ClusterScenario,
    ClusterSimResult, ClusterStats, NodeTotals,
};

/// Errors from the cluster layer.
#[derive(Debug)]
pub enum ClusterError {
    /// Invalid scenario or cluster configuration.
    Config(String),
    /// Storage/partitioner failure.
    Storage(ccam::CcamError),
    /// Network-model failure.
    Network(roadnet::NetworkError),
    /// Engine or epoch-layer failure.
    Engine(allfp::AllFpError),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Config(msg) => write!(f, "cluster configuration error: {msg}"),
            ClusterError::Storage(e) => write!(f, "cluster storage error: {e}"),
            ClusterError::Network(e) => write!(f, "cluster network error: {e}"),
            ClusterError::Engine(e) => write!(f, "cluster engine error: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Config(_) => None,
            ClusterError::Storage(e) => Some(e),
            ClusterError::Network(e) => Some(e),
            ClusterError::Engine(e) => Some(e),
        }
    }
}

impl From<ccam::CcamError> for ClusterError {
    fn from(e: ccam::CcamError) -> Self {
        ClusterError::Storage(e)
    }
}

impl From<roadnet::NetworkError> for ClusterError {
    fn from(e: roadnet::NetworkError) -> Self {
        ClusterError::Network(e)
    }
}

impl From<allfp::AllFpError> for ClusterError {
    fn from(e: allfp::AllFpError) -> Self {
        ClusterError::Engine(e)
    }
}
