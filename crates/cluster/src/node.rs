//! One simulated cluster node: a full `QueryService` stack whose
//! engine reaches non-resident shards through the virtual bus.
//!
//! # How bit-exactness survives the network
//!
//! The data plane is replicated: every node's [`EpochManager`] holds a
//! complete copy of the network, advanced through the identical delta
//! chain, so all nodes (and the single-node oracle) build byte-equal
//! epochs and estimators. What the cluster adds is an *availability*
//! plane: a node may only read graph data of a shard it hosts, or of a
//! shard it has fetched this query over RPC. The fetch can fail (peer
//! crashed, network partitioned, breaker open past retries) or merely
//! cost virtual latency — it never changes a byte of the answer. So a
//! query either completes bit-identically to the flat pipeline or
//! degrades; there is no third state, which is exactly the Theorem 1
//! boundary-interface contract restated as a distributed system.

use std::cell::{Cell, RefCell};
use std::collections::HashSet;
use std::rc::Rc;
use std::sync::Arc;

use allfp::service::{
    BreakerConfig, CircuitBreaker, LatencyHistogram, ManualClock, Route, ServiceClock,
};
use allfp::{
    AllFpAnswer, CacheCounters, CacheSession, Engine, EngineError, EpochManager, PathfindBackend,
    QueryOutcome, QuerySpec, SingleFpAnswer,
};
use roadnet::{
    Edge, NetworkError, NetworkSource, NodeId, PatternId, Point, RoadNetwork, StorageFaultKind,
};
use traffic::CapeCodPattern;

use crate::bus::{splitmix64, RpcOutcome, VirtualBus};
use crate::shard::ShardMap;

/// Client-side RPC retry tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt of one `(peer, fetch)`.
    pub max_retries: u32,
    /// Base backoff delay; attempt `k` waits `backoff_base << k` plus
    /// seeded jitter (the same `splitmix64 % (base/2 + 1)` shape the
    /// buffer pool uses), so retrying clients de-lockstep.
    pub backoff_base: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            backoff_base: 4,
        }
    }
}

/// Per-node RPC accounting, summed across service incarnations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RpcCounters {
    /// Individual RPC attempts put on the bus.
    pub attempts: u64,
    /// Re-attempts after a timeout, with backoff.
    pub retries: u64,
    /// Attempts that burned the full timeout.
    pub timeouts: u64,
    /// Attempts refused fast because the peer was crashed.
    pub peer_down: u64,
    /// Attempts dropped by an active network partition.
    pub partition_drops: u64,
    /// Candidate hosts skipped because their circuit breaker was open.
    pub breaker_skips: u64,
    /// Shard fetches served by a replica after the preferred host
    /// failed (the failover path).
    pub failovers: u64,
    /// Shard fetches that succeeded (on any host).
    pub shard_fetches: u64,
    /// Shard fetches that exhausted every host and degraded the query.
    pub shard_unreachable: u64,
}

/// Breakers and counters behind one `RefCell`, so a borrow is always
/// scoped to a single decision.
#[derive(Debug)]
struct RpcState {
    /// One breaker per peer node, indexed by simulated node id.
    breakers: Vec<CircuitBreaker>,
    counters: RpcCounters,
}

/// One simulated cluster node's engine-side state. The query engine
/// itself is built per query (borrowing the pinned epoch), exactly as
/// [`allfp::LiveBackend`] does; this struct owns everything that
/// outlives a query: the epoch chain, the shard map, the bus
/// endpoint, per-peer breakers, and the node's virtual clock.
pub struct NodeBackend {
    id: usize,
    manager: EpochManager,
    shards: Arc<ShardMap>,
    bus: Rc<VirtualBus>,
    clock: Rc<ManualClock>,
    breaker_cfg: BreakerConfig,
    retry: RetryPolicy,
    rpc: RefCell<RpcState>,
    /// Virtual units spent on RPC during queries since the driver
    /// last collected them (the driver folds these into the node's
    /// clock advance after each step).
    accrued: Cell<u64>,
    /// Wasted-work latency of every failover, shared fleet-wide.
    failover_hist: Rc<RefCell<LatencyHistogram>>,
}

impl NodeBackend {
    /// A node with the given identity and cluster wiring.
    /// `breaker_cfg` should carry a per-node `probe_seed` so
    /// half-open probes across the fleet de-lockstep.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: usize,
        manager: EpochManager,
        shards: Arc<ShardMap>,
        bus: Rc<VirtualBus>,
        clock: Rc<ManualClock>,
        breaker_cfg: BreakerConfig,
        retry: RetryPolicy,
        failover_hist: Rc<RefCell<LatencyHistogram>>,
    ) -> Self {
        let n = shards.n_sim_nodes();
        NodeBackend {
            id,
            manager,
            shards,
            bus,
            clock,
            breaker_cfg,
            retry,
            rpc: RefCell::new(RpcState {
                breakers: (0..n).map(|_| CircuitBreaker::new()).collect(),
                counters: RpcCounters::default(),
            }),
            accrued: Cell::new(0),
            failover_hist,
        }
    }

    /// This node's simulated id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The node's epoch manager (for `QueryService::with_epochs` and
    /// delta application).
    pub fn manager(&self) -> &EpochManager {
        &self.manager
    }

    /// The node's virtual clock.
    pub fn clock(&self) -> &ManualClock {
        &self.clock
    }

    /// The shard map this node routes by.
    pub fn shards(&self) -> &ShardMap {
        &self.shards
    }

    /// Snapshot of the node's RPC counters.
    pub fn rpc_counters(&self) -> RpcCounters {
        self.rpc.borrow().counters
    }

    /// Total circuit-breaker trips across all peers.
    pub fn breaker_trips(&self) -> u64 {
        self.rpc.borrow().breakers.iter().map(|b| b.trips()).sum()
    }

    /// Drain the RPC latency accrued since the last call — the driver
    /// adds this to the node's clock after each service step, so RPC
    /// waiting consumes real (virtual) capacity.
    pub fn take_accrued(&self) -> u64 {
        self.accrued.replace(0)
    }

    /// Forget learned peer health (fresh breakers) — called on node
    /// restart: a rebooted process has no memory of who was flaky.
    /// Counters survive; they account the node, not the incarnation.
    pub fn reset_peers(&self) {
        let mut st = self.rpc.borrow_mut();
        let n = st.breakers.len();
        st.breakers = (0..n).map(|_| CircuitBreaker::new()).collect();
    }

    /// The node's view of `now`: its clock plus RPC latency already
    /// accrued inside the current query.
    fn now_plus(&self, accrued: u64) -> u64 {
        self.clock.now() + self.accrued.get() + accrued
    }

    /// Fetch `shard`'s data over the bus: try each host in the shard
    /// map's deterministic order (primary first), gate each through
    /// its circuit breaker, retry timeouts with seeded backoff, fail
    /// over to the next replica on exhaustion. Returns the virtual
    /// latency the fetch cost, or a transient storage error once every
    /// host is exhausted (which the service degrades gracefully).
    fn fetch_shard(&self, shard: u32, accrued: &Cell<u64>) -> Result<(), NetworkError> {
        let start = accrued.get();
        for (rank, host) in self.shards.hosts(shard).enumerate() {
            if host == self.id {
                // Residency is checked before fetching, so this arm is
                // unreachable; skip rather than self-RPC if it ever isn't.
                continue;
            }
            let route = {
                let mut st = self.rpc.borrow_mut();
                st.breakers[host].route(self.now_plus(accrued.get()), &self.breaker_cfg)
            };
            if route == Route::Fallback {
                self.rpc.borrow_mut().counters.breaker_skips += 1;
                continue;
            }
            let probe = route == Route::Probe;
            let delivered = self.call_with_retries(host, accrued);
            {
                let mut st = self.rpc.borrow_mut();
                let now = self.clock.now() + self.accrued.get() + accrued.get();
                if probe {
                    st.breakers[host].on_probe(now, !delivered, &self.breaker_cfg);
                } else {
                    st.breakers[host].on_primary(now, !delivered, &self.breaker_cfg);
                }
            }
            if delivered {
                let mut st = self.rpc.borrow_mut();
                st.counters.shard_fetches += 1;
                if rank > 0 {
                    st.counters.failovers += 1;
                    self.failover_hist
                        .borrow_mut()
                        .record(accrued.get() - start);
                }
                return Ok(());
            }
        }
        let mut st = self.rpc.borrow_mut();
        st.counters.shard_unreachable += 1;
        Err(NetworkError::Storage {
            kind: StorageFaultKind::Transient,
            message: format!("shard {shard} unreachable from node {}", self.id),
        })
    }

    /// One host: first attempt plus up to `max_retries` timeout
    /// retries with seeded exponential backoff. Peer-down and
    /// partition outcomes fail the host immediately (retrying a
    /// crashed peer inside one query wastes budget; the breaker and
    /// the next replica handle it).
    fn call_with_retries(&self, host: usize, accrued: &Cell<u64>) -> bool {
        let cfg = self.bus.config().clone();
        for attempt in 0..=self.retry.max_retries {
            self.rpc.borrow_mut().counters.attempts += 1;
            let outcome = self.bus.call(self.id, host, self.now_plus(accrued.get()));
            match outcome {
                RpcOutcome::Delivered { latency } => {
                    accrued.set(accrued.get() + latency);
                    return true;
                }
                RpcOutcome::TimedOut => {
                    accrued.set(accrued.get() + cfg.timeout);
                    let mut st = self.rpc.borrow_mut();
                    st.counters.timeouts += 1;
                    if attempt < self.retry.max_retries {
                        st.counters.retries += 1;
                        drop(st);
                        let base = self.retry.backoff_base << attempt;
                        let jitter = splitmix64(
                            (self.id as u64) << 32
                                | (host as u64) << 16
                                | self.rpc.borrow().counters.retries,
                        ) % (self.retry.backoff_base / 2 + 1);
                        accrued.set(accrued.get() + base + jitter);
                    }
                }
                RpcOutcome::PeerDown => {
                    // Connection refused is fast: one base latency.
                    accrued.set(accrued.get() + cfg.base_latency);
                    self.rpc.borrow_mut().counters.peer_down += 1;
                    return false;
                }
                RpcOutcome::Partitioned => {
                    // Indistinguishable from a dead-slow peer: burn
                    // the timeout, but don't retry into the void.
                    accrued.set(accrued.get() + cfg.timeout);
                    self.rpc.borrow_mut().counters.partition_drops += 1;
                    return false;
                }
            }
        }
        false
    }
}

/// The per-query [`NetworkSource`] a node's engine searches over:
/// resident shards read directly, non-resident shards require one
/// successful simulated fetch per query (a session granule — real
/// systems batch boundary data per request, not per edge read).
/// Pattern-table and global-metadata reads are never gated: the
/// pattern table is tiny, replicated everywhere by construction.
pub struct ClusterSource<'a> {
    backend: &'a NodeBackend,
    net: &'a RoadNetwork,
    fetched: RefCell<HashSet<u32>>,
    accrued: Cell<u64>,
}

impl<'a> ClusterSource<'a> {
    /// A query-scoped source for `backend` over the pinned epoch's
    /// network.
    pub fn new(backend: &'a NodeBackend, net: &'a RoadNetwork) -> Self {
        ClusterSource {
            backend,
            net,
            fetched: RefCell::new(HashSet::new()),
            accrued: Cell::new(0),
        }
    }

    /// Virtual RPC latency this query accrued so far.
    pub fn accrued(&self) -> u64 {
        self.accrued.get()
    }

    /// Gate one node access: resident or already fetched is free;
    /// otherwise fetch the whole shard once over the bus.
    fn ensure(&self, node: NodeId) -> Result<(), NetworkError> {
        let shard = self.backend.shards.shard_of(node);
        if self.backend.shards.is_resident(self.backend.id, shard)
            || self.fetched.borrow().contains(&shard)
        {
            return Ok(());
        }
        self.backend.fetch_shard(shard, &self.accrued)?;
        self.fetched.borrow_mut().insert(shard);
        Ok(())
    }
}

impl NetworkSource for ClusterSource<'_> {
    fn n_nodes(&self) -> usize {
        self.net.n_nodes()
    }

    fn find_node(&self, node: NodeId) -> roadnet::Result<Point> {
        self.ensure(node)?;
        self.net.find_node(node)
    }

    fn successors(&self, node: NodeId) -> roadnet::Result<Vec<Edge>> {
        self.ensure(node)?;
        self.net.successors(node)
    }

    fn successors_into(&self, node: NodeId, buf: &mut Vec<Edge>) -> roadnet::Result<()> {
        self.ensure(node)?;
        self.net.successors_into(node, buf)
    }

    fn pattern(&self, id: PatternId) -> roadnet::Result<&CapeCodPattern> {
        self.net.pattern(id)
    }

    fn max_speed(&self) -> f64 {
        self.net.max_speed()
    }
}

impl PathfindBackend for NodeBackend {
    fn backend_name(&self) -> &'static str {
        "cluster-node"
    }

    fn cache_session(&self) -> CacheSession<'_> {
        self.manager.cache().session()
    }

    fn cache_counters(&self) -> CacheCounters {
        self.manager.cache().counters()
    }

    fn all_fastest_paths(&self, query: &QuerySpec) -> allfp::Result<AllFpAnswer> {
        let epoch = self
            .manager
            .pin(query.epoch)
            .ok_or(allfp::AllFpError::EpochRetired {
                epoch: query.epoch.map_or(0, |e| e.0),
            })?;
        let source = ClusterSource::new(self, epoch.network().as_ref());
        let engine = Engine::with_shared(
            &source,
            Arc::clone(epoch.estimator()),
            Arc::clone(self.manager.cache()),
            self.manager.config().clone(),
        );
        let out = engine.all_fastest_paths(query);
        self.accrued.set(self.accrued.get() + source.accrued());
        out
    }

    fn single_fastest_path(&self, query: &QuerySpec) -> allfp::Result<SingleFpAnswer> {
        let epoch = self
            .manager
            .pin(query.epoch)
            .ok_or(allfp::AllFpError::EpochRetired {
                epoch: query.epoch.map_or(0, |e| e.0),
            })?;
        let source = ClusterSource::new(self, epoch.network().as_ref());
        let engine = Engine::with_shared(
            &source,
            Arc::clone(epoch.estimator()),
            Arc::clone(self.manager.cache()),
            self.manager.config().clone(),
        );
        let out = engine.single_fastest_path(query);
        self.accrued.set(self.accrued.get() + source.accrued());
        out
    }

    fn robust_with_session(
        &self,
        query: &QuerySpec,
        session: &mut CacheSession<'_>,
        cancel: Option<&allfp::CancelToken>,
    ) -> std::result::Result<QueryOutcome, EngineError> {
        let epoch = self
            .manager
            .pin(query.epoch)
            .ok_or(allfp::AllFpError::EpochRetired {
                epoch: query.epoch.map_or(0, |e| e.0),
            })
            .map_err(EngineError::from)?;
        let source = ClusterSource::new(self, epoch.network().as_ref());
        let engine = Engine::with_shared(
            &source,
            Arc::clone(epoch.estimator()),
            Arc::clone(self.manager.cache()),
            self.manager.config().clone(),
        );
        let out = engine.robust_with_session(query, session, cancel);
        self.accrued.set(self.accrued.get() + source.accrued());
        out
    }
}
