//! Property tests for contraction: on random seeded networks, the
//! overlay must preserve **all-pairs** travel functions — for every
//! source/target pair and every probed leaving instant, the hierarchy's
//! answer equals the flat engine's, and the full answer structure
//! (paths, partition, functions) matches bit for bit.

use allfp::{Engine, EngineConfig, PathfindBackend, QuerySpec};
use hierarchy::{HierarchyConfig, HierarchyEngine};
use proptest::prelude::*;
use pwl::time::hm;
use pwl::Interval;
use roadnet::generators::random_geometric;
use roadnet::NodeId;
use traffic::DayCategory;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        ..ProptestConfig::default()
    })]

    /// Contraction of a random seeded graph preserves all-pairs travel
    /// functions: every (s, t) pair answers identically to the flat
    /// engine across the whole leaving interval.
    #[test]
    fn contraction_preserves_all_pairs_travel(
        seed in 0u64..500,
        lo_frac in 0.0f64..0.7,
        len in 30.0f64..120.0,
    ) {
        const N: usize = 14;
        let net = random_geometric(N, 1.5, 3, seed).unwrap();
        let lo = hm(6, 0) + lo_frac * 240.0;
        let interval = Interval::of(lo, lo + len);
        let flat = Engine::new(&net, EngineConfig::default());
        let ch = HierarchyEngine::build(
            &net,
            EngineConfig::default(),
            HierarchyConfig::default(),
        )
        .unwrap();
        for s in 0..N as u32 {
            for t in 0..N as u32 {
                if s == t {
                    continue;
                }
                let q = QuerySpec::new(NodeId(s), NodeId(t), interval, DayCategory::WORKDAY);
                let fa = flat.all_fastest_paths(&q).unwrap();
                let ha = ch.all_fastest_paths(&q).unwrap();
                prop_assert_eq!(fa.partition.len(), ha.partition.len());
                for ((fi, fp), (hi, hp)) in fa.partition.iter().zip(ha.partition.iter()) {
                    prop_assert_eq!(fi.lo().to_bits(), hi.lo().to_bits());
                    prop_assert_eq!(fi.hi().to_bits(), hi.hi().to_bits());
                    prop_assert_eq!(&fa.paths[*fp].nodes, &ha.paths[*hp].nodes);
                }
                for (f, h) in fa.paths.iter().zip(ha.paths.iter()) {
                    prop_assert_eq!(f.travel.breakpoints(), h.travel.breakpoints());
                    prop_assert_eq!(f.travel.linears(), h.travel.linears());
                }
            }
        }
    }

    /// Snapshot round-trip: serialize the contracted structure, decode
    /// it, rebuild the engine, and get identical answers and counts.
    #[test]
    fn snapshot_roundtrip_preserves_answers(seed in 0u64..200) {
        const N: usize = 16;
        let net = random_geometric(N, 1.5, 3, seed).unwrap();
        let ch = HierarchyEngine::build(
            &net,
            EngineConfig::default(),
            HierarchyConfig::default(),
        )
        .unwrap();
        let bytes = ch.snapshot().to_bytes();
        let snap = roadnet::overlay::HierarchySnapshot::from_bytes(&bytes).unwrap();
        let restored = HierarchyEngine::from_snapshot(
            Engine::new(&net, EngineConfig::default()),
            HierarchyConfig::default(),
            &snap,
        )
        .unwrap();
        prop_assert_eq!(ch.report().n_shortcuts, restored.report().n_shortcuts);
        prop_assert_eq!(ch.report().n_original_arcs, restored.report().n_original_arcs);
        prop_assert_eq!(ch.report().overlay_pieces, restored.report().overlay_pieces);

        let interval = Interval::of(hm(7, 0), hm(9, 0));
        for (s, t) in [(0u32, N as u32 - 1), (3, 9), (7, 2)] {
            let q = QuerySpec::new(NodeId(s), NodeId(t), interval, DayCategory::WORKDAY);
            let a = ch.single_fastest_path(&q).unwrap();
            let b = restored.single_fastest_path(&q).unwrap();
            prop_assert_eq!(&a.path.nodes, &b.path.nodes);
            prop_assert_eq!(a.travel_minutes.to_bits(), b.travel_minutes.to_bits());
            prop_assert_eq!(a.path.travel.breakpoints(), b.path.travel.breakpoints());
        }
    }
}
