//! Property tests for contraction: on random seeded networks, the
//! overlay must preserve **all-pairs** travel functions — for every
//! source/target pair and every probed leaving instant, the hierarchy's
//! answer equals the flat engine's, and the full answer structure
//! (paths, partition, functions) matches bit for bit.

use allfp::{Engine, EngineConfig, PathfindBackend, QuerySpec};
use hierarchy::{HierarchyConfig, HierarchyEngine};
use proptest::prelude::*;
use pwl::time::hm;
use pwl::Interval;
use roadnet::generators::random_geometric;
use roadnet::NodeId;
use traffic::DayCategory;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        ..ProptestConfig::default()
    })]

    /// Contraction of a random seeded graph preserves all-pairs travel
    /// functions: every (s, t) pair answers identically to the flat
    /// engine across the whole leaving interval.
    #[test]
    fn contraction_preserves_all_pairs_travel(
        seed in 0u64..500,
        lo_frac in 0.0f64..0.7,
        len in 30.0f64..120.0,
    ) {
        const N: usize = 14;
        let net = random_geometric(N, 1.5, 3, seed).unwrap();
        let lo = hm(6, 0) + lo_frac * 240.0;
        let interval = Interval::of(lo, lo + len);
        let flat = Engine::new(&net, EngineConfig::default());
        let ch = HierarchyEngine::build(
            &net,
            EngineConfig::default(),
            HierarchyConfig::default(),
        )
        .unwrap();
        for s in 0..N as u32 {
            for t in 0..N as u32 {
                if s == t {
                    continue;
                }
                let q = QuerySpec::new(NodeId(s), NodeId(t), interval, DayCategory::WORKDAY);
                let fa = flat.all_fastest_paths(&q).unwrap();
                let ha = ch.all_fastest_paths(&q).unwrap();
                prop_assert_eq!(fa.partition.len(), ha.partition.len());
                for ((fi, fp), (hi, hp)) in fa.partition.iter().zip(ha.partition.iter()) {
                    prop_assert_eq!(fi.lo().to_bits(), hi.lo().to_bits());
                    prop_assert_eq!(fi.hi().to_bits(), hi.hi().to_bits());
                    prop_assert_eq!(&fa.paths[*fp].nodes, &ha.paths[*hp].nodes);
                }
                for (f, h) in fa.paths.iter().zip(ha.paths.iter()) {
                    prop_assert_eq!(f.travel.breakpoints(), h.travel.breakpoints());
                    prop_assert_eq!(f.travel.linears(), h.travel.linears());
                }
            }
        }
    }

    /// Snapshot round-trip: serialize the contracted structure, decode
    /// it, rebuild the engine (with a *parallel* restore pool), and
    /// get identical answers, counts — and an identical re-snapshot,
    /// which pins every stored scalar/band table bit for bit.
    #[test]
    fn snapshot_roundtrip_preserves_answers(seed in 0u64..200) {
        const N: usize = 16;
        let net = random_geometric(N, 1.5, 3, seed).unwrap();
        let ch = HierarchyEngine::build(
            &net,
            EngineConfig::default(),
            HierarchyConfig::default(),
        )
        .unwrap();
        let bytes = ch.snapshot().to_bytes();
        let snap = roadnet::overlay::HierarchySnapshot::from_bytes(&bytes).unwrap();
        let restored = HierarchyEngine::from_snapshot(
            Engine::new(&net, EngineConfig::default()),
            HierarchyConfig {
                threads: 2,
                ..HierarchyConfig::default()
            },
            &snap,
        )
        .unwrap();
        prop_assert_eq!(ch.report().n_shortcuts, restored.report().n_shortcuts);
        prop_assert_eq!(ch.report().n_original_arcs, restored.report().n_original_arcs);
        prop_assert_eq!(ch.report().overlay_pieces, restored.report().overlay_pieces);
        prop_assert_eq!(ch.report().exact_pieces, restored.report().exact_pieces);
        prop_assert_eq!(restored.snapshot(), snap);

        let interval = Interval::of(hm(7, 0), hm(9, 0));
        for (s, t) in [(0u32, N as u32 - 1), (3, 9), (7, 2)] {
            let q = QuerySpec::new(NodeId(s), NodeId(t), interval, DayCategory::WORKDAY);
            let a = ch.single_fastest_path(&q).unwrap();
            let b = restored.single_fastest_path(&q).unwrap();
            prop_assert_eq!(&a.path.nodes, &b.path.nodes);
            prop_assert_eq!(a.travel_minutes.to_bits(), b.travel_minutes.to_bits());
            prop_assert_eq!(a.path.travel.breakpoints(), b.path.travel.breakpoints());
        }
    }
}

fn config_with(threads: usize, compress: Option<f64>) -> HierarchyConfig {
    HierarchyConfig {
        threads,
        overlay_compress: compress,
        ..HierarchyConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 4,
        ..ProptestConfig::default()
    })]

    /// **Parallel-contraction determinism**: the overlay produced at
    /// every thread count is identical to the serial one — same node
    /// order, same arcs, same via pairs, same stored function scalars
    /// and band tables (the snapshot carries them as `f64` bit
    /// patterns, so snapshot equality is bit-level equality).
    #[test]
    fn parallel_contraction_is_deterministic(
        seed in 0u64..300,
        compressed in 0u32..2,
    ) {
        const N: usize = 16;
        let net = random_geometric(N, 1.5, 3, seed).unwrap();
        let compress = if compressed == 1 { Some(0.5) } else { None };
        let serial = HierarchyEngine::build(
            &net,
            EngineConfig::default(),
            config_with(1, compress),
        )
        .unwrap();
        let golden = serial.snapshot();
        for threads in [2usize, 4, 7] {
            let par = HierarchyEngine::build(
                &net,
                EngineConfig::default(),
                config_with(threads, compress),
            )
            .unwrap();
            prop_assert!(par.snapshot() == golden, "overlay differs at thread count {}", threads);
            prop_assert_eq!(par.report().overlay_pieces, serial.report().overlay_pieces);
            prop_assert_eq!(par.report().exact_pieces, serial.report().exact_pieces);
            prop_assert_eq!(par.report().rounds, serial.report().rounds);
        }
    }

    /// **Approximation exactness**: a compressed overlay (even with an
    /// aggressive error band) answers bit-identically to an exact
    /// overlay — the search only selects corridors, answers re-compose
    /// through the flat pipeline — while storing no more pieces.
    #[test]
    fn compressed_overlay_answers_match_exact(
        seed in 0u64..300,
        eps in 0.2f64..4.0,
    ) {
        const N: usize = 14;
        let net = random_geometric(N, 1.5, 3, seed).unwrap();
        let exact = HierarchyEngine::build(
            &net,
            EngineConfig::default(),
            config_with(1, None),
        )
        .unwrap();
        let compact = HierarchyEngine::build(
            &net,
            EngineConfig::default(),
            config_with(1, Some(eps)),
        )
        .unwrap();
        prop_assert!(
            compact.report().overlay_pieces <= exact.report().overlay_pieces,
            "compression grew the overlay: {} > {}",
            compact.report().overlay_pieces,
            exact.report().overlay_pieces
        );
        let interval = Interval::of(hm(6, 30), hm(8, 30));
        for (s, t) in [(0u32, N as u32 - 1), (1, 8), (5, 2), (9, 4), (3, 12)] {
            let q = QuerySpec::new(NodeId(s), NodeId(t), interval, DayCategory::WORKDAY);
            let a = exact.all_fastest_paths(&q).unwrap();
            let b = compact.all_fastest_paths(&q).unwrap();
            prop_assert_eq!(a.partition.len(), b.partition.len());
            for ((ai, ap), (bi, bp)) in a.partition.iter().zip(b.partition.iter()) {
                prop_assert_eq!(ai.lo().to_bits(), bi.lo().to_bits());
                prop_assert_eq!(ai.hi().to_bits(), bi.hi().to_bits());
                prop_assert_eq!(&a.paths[*ap].nodes, &b.paths[*bp].nodes);
            }
            for (f, h) in a.paths.iter().zip(b.paths.iter()) {
                prop_assert_eq!(f.travel.breakpoints(), h.travel.breakpoints());
                prop_assert_eq!(f.travel.linears(), h.travel.linears());
            }
            let sa = exact.single_fastest_path(&q).unwrap();
            let sb = compact.single_fastest_path(&q).unwrap();
            prop_assert_eq!(&sa.path.nodes, &sb.path.nodes);
            prop_assert_eq!(sa.travel_minutes.to_bits(), sb.travel_minutes.to_bits());
        }
    }
}
