//! Property tests for the live-update path: metric-independent
//! ("live") topologies stay exact under traffic deltas, and the
//! incremental refresh — which re-composes only the dirty composition
//! cone and reuses every clean arc's stored function verbatim — is
//! bit-for-bit equal to rebuilding the overlay from scratch over the
//! delta-applied network.

use allfp::{Engine, EngineConfig, PathfindBackend, QuerySpec};
use hierarchy::{HierarchyConfig, HierarchyEngine};
use proptest::prelude::*;
use pwl::time::hm;
use pwl::Interval;
use roadnet::generators::random_geometric;
use roadnet::NodeId;
use traffic::DayCategory;

fn live_config() -> HierarchyConfig {
    HierarchyConfig {
        live_topology: true,
        ..HierarchyConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        ..ProptestConfig::default()
    })]

    /// Incremental refresh ≡ from-scratch restore, bit for bit: after
    /// a seeded delta, `refreshed` (dirty-cone re-composition, clean
    /// arcs reused verbatim) produces the identical overlay — same
    /// snapshot (ranks, topology, every stored scalar/band table as
    /// `f64` bits), same piece counts — as `from_snapshot` over the
    /// delta-applied network, which re-composes *everything*.
    #[test]
    fn refresh_equals_from_scratch_rebuild(
        seed in 0u64..300,
        delta_seed in 0u64..1000,
        n_changed in 1usize..6,
    ) {
        const N: usize = 14;
        let net = random_geometric(N, 1.5, 3, seed).unwrap();
        let live = HierarchyEngine::build(&net, EngineConfig::default(), live_config()).unwrap();
        let delta = net.seeded_delta(delta_seed, n_changed, 1).unwrap();
        let (net2, report) = net.apply_delta(&delta).unwrap();

        let (refreshed, rr) = live
            .refreshed(Engine::new(&net2, EngineConfig::default()), &report.changed)
            .unwrap();
        let scratch = HierarchyEngine::from_snapshot(
            Engine::new(&net2, EngineConfig::default()),
            live_config(),
            &live.snapshot(),
        )
        .unwrap();

        prop_assert_eq!(refreshed.snapshot(), scratch.snapshot());
        prop_assert_eq!(refreshed.report().overlay_pieces, scratch.report().overlay_pieces);
        prop_assert_eq!(refreshed.report().exact_pieces, scratch.report().exact_pieces);

        // The dirty cone is scoped: only arcs whose cone touches a
        // changed edge were re-composed, and the accounting adds up.
        prop_assert!(rr.base_rebuilt >= report.changed.len());
        prop_assert!(rr.base_rebuilt <= rr.base_total);
        prop_assert!(rr.shortcuts_rebuilt <= rr.shortcuts_total);
        prop_assert!((0.0..=1.0).contains(&rr.invalidation_fraction()));
    }

    /// A live topology stays **query-exact under any delta**: no
    /// witness proofs or domination choices were baked in for the old
    /// metric, so after refreshing the functions the up–down search
    /// answers bit-identically to a flat engine on the new network.
    #[test]
    fn live_topology_stays_exact_after_deltas(
        seed in 0u64..300,
        delta_seed in 0u64..1000,
    ) {
        const N: usize = 12;
        let net = random_geometric(N, 1.5, 3, seed).unwrap();
        let live = HierarchyEngine::build(&net, EngineConfig::default(), live_config()).unwrap();

        // Two stacked deltas: refresh the refresh.
        let d1 = net.seeded_delta(delta_seed, 4, 1).unwrap();
        let (net2, r1) = net.apply_delta(&d1).unwrap();
        let (live2, _) = live
            .refreshed(Engine::new(&net2, EngineConfig::default()), &r1.changed)
            .unwrap();
        let d2 = net2.seeded_delta(delta_seed ^ 0xABCD, 3, 2).unwrap();
        let (net3, r2) = net2.apply_delta(&d2).unwrap();
        let (live3, _) = live2
            .refreshed(Engine::new(&net3, EngineConfig::default()), &r2.changed)
            .unwrap();

        let flat = Engine::new(&net3, EngineConfig::default());
        let interval = Interval::of(hm(6, 30), hm(8, 30));
        for s in 0..N as u32 {
            for t in 0..N as u32 {
                if s == t {
                    continue;
                }
                let q = QuerySpec::new(NodeId(s), NodeId(t), interval, DayCategory::WORKDAY);
                let fa = flat.all_fastest_paths(&q).unwrap();
                let ha = live3.all_fastest_paths(&q).unwrap();
                prop_assert_eq!(fa.partition.len(), ha.partition.len());
                for ((fi, fp), (hi, hp)) in fa.partition.iter().zip(ha.partition.iter()) {
                    prop_assert_eq!(fi.lo().to_bits(), hi.lo().to_bits());
                    prop_assert_eq!(fi.hi().to_bits(), hi.hi().to_bits());
                    prop_assert_eq!(&fa.paths[*fp].nodes, &ha.paths[*hp].nodes);
                }
                for (f, h) in fa.paths.iter().zip(ha.paths.iter()) {
                    prop_assert_eq!(f.travel.breakpoints(), h.travel.breakpoints());
                    prop_assert_eq!(f.travel.linears(), h.travel.linears());
                }
            }
        }
    }
}

/// Refresh refuses banded storage: re-composition reads the vias'
/// stored functions, which must be exact — a compressed overlay would
/// silently diverge from a from-scratch build.
#[test]
fn refresh_rejects_compressed_overlays() {
    let net = random_geometric(10, 1.5, 3, 7).unwrap();
    let compressed =
        HierarchyEngine::build(&net, EngineConfig::default(), HierarchyConfig::default()).unwrap();
    let delta = net.seeded_delta(3, 2, 1).unwrap();
    let (net2, report) = net.apply_delta(&delta).unwrap();
    let err = compressed
        .refreshed(Engine::new(&net2, EngineConfig::default()), &report.changed)
        .err()
        .map(|e| e.to_string())
        .unwrap_or_default();
    assert!(
        err.contains("exact overlay storage"),
        "unexpected error: {err}"
    );
}

/// An empty delta refreshes to the identical engine while rebuilding
/// nothing at all — the scoped-invalidation floor.
#[test]
fn empty_delta_rebuilds_nothing() {
    let net = random_geometric(12, 1.5, 3, 11).unwrap();
    let live = HierarchyEngine::build(&net, EngineConfig::default(), live_config()).unwrap();
    let (refreshed, rr) = live
        .refreshed(Engine::new(&net, EngineConfig::default()), &[])
        .unwrap();
    assert_eq!(rr.base_rebuilt, 0);
    assert_eq!(rr.shortcuts_rebuilt, 0);
    assert_eq!(rr.invalidation_fraction(), 0.0);
    assert_eq!(refreshed.snapshot(), live.snapshot());
}
