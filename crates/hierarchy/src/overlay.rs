//! Overlay construction: node ordering and time-dependent contraction.
//!
//! Contraction removes nodes round by round and patches the remaining
//! graph with **shortcut arcs** whose weights are full piecewise-linear
//! travel-time functions, so that every fastest path of the original
//! network survives as an *up-then-down* path over the final arc set
//! (ranks ascend, then descend). Shortcut functions are built with the
//! same pooled [`compose_travel_into`] kernel the flat engine uses per
//! expansion, so the algebra is closed: a shortcut's function is a real
//! path's function, bit for bit.
//!
//! **Round-based parallel contraction.** Each round selects the
//! *independent set* of remainder nodes that are strict local minima
//! of `(priority, node id)` among their uncontracted neighbors — a
//! deterministic tie-broken rule with at least one member per round
//! (the global minimum always qualifies) and no two members adjacent.
//! Planning (witness searches and shortcut composition) runs in
//! parallel over the pre-round state, read-only, with per-worker
//! scratch pools; application (domination checks, arc insertion,
//! ranks) is serial in ascending node order. Because members are
//! pairwise non-adjacent, no application in a round touches an arc
//! incident to another member, so the plans stay valid — the overlay
//! is **identical at every thread count by construction** (pinned by
//! `tests/contraction_props.rs`).
//!
//! A candidate shortcut `u → v → w` is **omitted** only on proof: a
//! bounded Dijkstra from `u` over the remainder graph (without `v` and
//! without the round's other members, so the proof survives the whole
//! round) under per-arc *maximum* travel times finds a witness path
//! whose worst case is no worse than the via pair's best case
//! (`dist_max(w) ≤ min(T_a) + min(T_b)`). Sum-of-max upper-bounds the
//! true travel of any path at every leaving instant (FIFO), and
//! min-of-sums lower-bounds the via travel, so dropped shortcuts can
//! never carry a strictly fastest path. Parallel arcs between the same
//! endpoints are deduplicated by pointwise domination
//! ([`Pwl::dominated_by_with`]) — the same ε-tolerant rule the flat
//! engine's dominance pruning already applies.
//!
//! **Space-efficient storage.** Each arc stores only its **one-day**
//! function: the periodic extension earlier revisions materialized per
//! arc (two thirds of resident overlay bytes, all of it a bit-exact
//! derived copy) is now virtual, and [`ext_window`] derives any
//! restriction of it on demand, bit for bit. On top of that the
//! stored functions are optionally replaced by bounded-error *lower
//! approximations* ([`pwl::reduce_lower_with`]) with the measured gap
//! kept per arc; exact scalar `min`/`max`, the exact function's
//! maximum slope, and a time-bucketed min/max **band table** (from the
//! exact function) ride along for admissible pruning. Queries stay
//! bit-identical: the search only *selects* corridors, every answer
//! re-composes through the flat engine (see `search.rs` and
//! DESIGN.md §13).

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

use allfp::Result;
use pwl::compose::arrival_interval;
use pwl::time::MINUTES_PER_DAY;
use pwl::{compose_travel_into, Interval, Pwl, PwlScratch};
use roadnet::{NetworkSource, NodeId};
use traffic::DayCategory;

use crate::pool::WorkerPool;

/// Buckets in each arc's min/max band table (over one day period).
pub(crate) const BANDS: usize = 8;

/// One arc of the overlay graph: an original edge or a shortcut.
///
/// Storage is append-only and arcs are referenced by index, so a
/// shortcut's `via` pair stays valid even after the arc it supersedes
/// is disabled by domination (disabled arcs leave the query adjacency
/// but remain unpackable).
///
/// During construction `full` holds the **exact** travel function
/// (composition and witness scalars need it); after the finalize pass
/// it holds the stored (possibly reduced) approximation, with `err`
/// recording the measured gap `max(exact − stored) ≥ 0`. `min`, `max`
/// and `slope_max` always describe the *exact* function.
///
/// Only the **one-day** function is stored. The periodic extension
/// that earlier revisions materialized per arc (a bit-exact derived
/// copy holding `EXT_PERIODS·pieces` more knots than the day function)
/// is now *virtual*: [`ext_window`] derives any restriction of it on
/// demand with the same `shift_x`/`concat` arithmetic, bit for bit.
pub(crate) struct OverlayArc {
    /// Tail node.
    pub from: u32,
    /// Head node.
    pub to: u32,
    /// Stored travel-time function over one full period `[0, 1440]`.
    pub full: Arc<Pwl>,
    /// Exact `min_value()` — lower bound at any leaving instant.
    pub min: f64,
    /// Exact `maximum()` — upper bound at any leaving instant.
    pub max: f64,
    /// Measured approximation gap: `exact(l) − full(l) ∈ [0, err]`.
    pub err: f64,
    /// Largest slope of the exact function, clamped to `≥ 0` (its
    /// Lipschitz factor) — recorded in the snapshot as a diagnostic;
    /// the search brackets error with composed upper functions instead
    /// of slope products.
    pub slope_max: f64,
    /// `Some((a, b))` when this is a shortcut composing arcs `a` then
    /// `b`; `None` for an original edge.
    pub via: Option<(u32, u32)>,
    /// Dominated by a parallel arc: excluded from query adjacency but
    /// kept for unpacking.
    pub disabled: bool,
}

/// The contracted overlay for one day category.
pub(crate) struct Overlay {
    /// Day category the travel functions were built for.
    pub category: DayCategory,
    /// Contraction order: `rank[v]` is the step at which `v` was
    /// contracted (higher = more important).
    pub rank: Vec<u32>,
    /// Append-only arc storage (original edges first, then shortcuts).
    pub arcs: Vec<OverlayArc>,
    /// Enabled arcs `u → v` with `rank[v] > rank[u]`, indexed by `u`.
    pub up_out: Vec<Vec<u32>>,
    /// Enabled arcs `u → v` with `rank[v] < rank[u]`, indexed by `u`.
    pub down_out: Vec<Vec<u32>>,
    /// Enabled down arcs indexed by their *head*, for the reverse
    /// reachability sweep of the query search.
    pub down_into: Vec<Vec<u32>>,
    /// Every enabled arc indexed by its *head*, for the per-query
    /// backward min-weight Dijkstra that seeds the search with exact
    /// scalar lower bounds to the target.
    pub live_into: Vec<Vec<u32>>,
    /// Number of original (non-shortcut) arcs.
    pub n_base: usize,
    /// Arcs disabled by parallel-arc domination.
    pub n_disabled: usize,
    /// Per-arc, per-bucket minimum of the exact function
    /// (`arcs.len() × BANDS`, bucket `k` covers
    /// `[k·1440/BANDS, (k+1)·1440/BANDS)`).
    pub band_min: Vec<f64>,
    /// Per-arc, per-bucket maximum of the exact function.
    pub band_max: Vec<f64>,
    /// Error band the stored functions were reduced with (`None` =
    /// exact storage).
    pub compress_eps: Option<f64>,
    /// Pieces the *baseline* layout would hold: the exact functions
    /// before reduction, **plus** the per-arc materialized
    /// `EXT_PERIODS`-day extension earlier revisions stored. The
    /// space report's compression ratio is stored pieces over this.
    pub exact_pieces: u64,
    /// Contraction rounds the build took (0 for snapshot restores).
    pub rounds: u32,
}

impl Overlay {
    /// Tightest stored lower bound on arc `aid`'s exact travel over
    /// leaving instants in `[lo, hi]` (absolute minutes; wraps across
    /// day periods). Falls back to the global exact minimum when the
    /// window covers a full period or the band table is empty.
    pub fn banded_min(&self, aid: u32, lo: f64, hi: f64) -> f64 {
        let arc = &self.arcs[aid as usize];
        if self.band_min.is_empty() || !lo.is_finite() || !hi.is_finite() {
            return arc.min;
        }
        let d = arc.full.domain();
        let day = d.len();
        if day <= 0.0 || hi - lo >= day {
            return arc.min;
        }
        let w = day / BANDS as f64;
        let a = ((lo - d.lo()) / w).floor() as i64;
        let b = ((hi - d.lo()) / w).floor() as i64;
        if b - a + 1 >= BANDS as i64 {
            return arc.min;
        }
        let base = aid as usize * BANDS;
        let mut m = f64::INFINITY;
        for k in a..=b {
            let idx = (k.rem_euclid(BANDS as i64)) as usize;
            m = m.min(self.band_min[base + idx]);
        }
        if m.is_finite() {
            m
        } else {
            arc.min
        }
    }
}

/// Days of periodic slack the query search assumes every arc covers:
/// leaving any time on day 0, travel may run into day 1. Arrival
/// windows escaping this range fall back to the flat engine.
pub(crate) const EXT_PERIODS: usize = 2;

/// `full` repeated over `periods` consecutive days (periodic
/// extension: `T(l + 1440) = T(l)`). `concat` tolerates the ~ε seam
/// mismatch composed functions accumulate at the period boundary.
pub(crate) fn extend_periodic(full: &Pwl, periods: usize) -> Result<Pwl> {
    let mut ext = full.clone();
    for k in 1..periods.max(2) {
        ext = ext.concat(&full.shift_x(k as f64 * MINUTES_PER_DAY))?;
    }
    Ok(ext)
}

/// Domain the *virtual* [`EXT_PERIODS`]-day periodic extension of
/// `full` covers — what [`extend_periodic`]`(full, EXT_PERIODS)`
/// would report, without materializing it.
pub(crate) fn ext_domain(full: &Pwl) -> Interval {
    let d = full.domain();
    Interval::of(
        d.lo(),
        d.hi() + (EXT_PERIODS as f64 - 1.0) * MINUTES_PER_DAY,
    )
}

/// Restrict the virtual periodic extension of `full` to `to`,
/// bit-identically to `extend_periodic(full, …).restrict_with(…, to)`
/// on a materialized extension covering `to`.
///
/// The fast paths never build the extension: a window inside day 0
/// restricts `full` directly, and a window inside a later repetition
/// restricts one shifted day (`shift_x(k·1440)` is exactly the
/// arithmetic [`extend_periodic`] applies to that day, and `concat`
/// only ever *appends* pieces, so the shifted day's knots and linears
/// are the extension's, bit for bit). Only a window crossing a day
/// seam concatenates the two days it touches, transiently.
pub(crate) fn ext_window(scratch: &mut PwlScratch, full: &Pwl, to: &Interval) -> Result<Pwl> {
    let d = full.domain();
    if d.covers(to) {
        return Ok(full.restrict_with(scratch, to)?);
    }
    // `floor` of the float ratio can land an ulp off at a seam; the
    // exact bound checks below decide, and anything ambiguous takes
    // the concat path (identical to a materialized extension by
    // construction).
    let k = ((to.lo() - d.lo()) / MINUTES_PER_DAY).floor();
    if k >= 1.0
        && to.lo() >= d.lo() + k * MINUTES_PER_DAY
        && to.hi() <= d.hi() + k * MINUTES_PER_DAY
    {
        let day = full.shift_x(k * MINUTES_PER_DAY);
        let out = day.restrict_with(scratch, to)?;
        scratch.recycle(day);
        return Ok(out);
    }
    let periods = ((to.hi() - d.lo()) / MINUTES_PER_DAY).ceil().max(2.0) as usize;
    let ext = extend_periodic(full, periods)?;
    let out = ext.restrict_with(scratch, to)?;
    scratch.recycle(ext);
    Ok(out)
}

/// Largest slope of `f`, clamped to `≥ 0` (the Lipschitz factor used
/// when composing approximation-error bounds).
fn slope_max_of(f: &Pwl) -> f64 {
    f.linears().iter().fold(0.0f64, |m, l| m.max(l.a))
}

/// Materialize an arc record around its **exact** full-period
/// function (construction-time representation: `err = 0`).
pub(crate) fn make_arc(
    from: u32,
    to: u32,
    full: Pwl,
    via: Option<(u32, u32)>,
) -> Result<OverlayArc> {
    Ok(OverlayArc {
        from,
        to,
        min: full.min_value(),
        max: full.maximum(),
        err: 0.0,
        slope_max: slope_max_of(&full),
        full: Arc::new(full),
        via,
        disabled: false,
    })
}

/// A verbatim copy of an arc for incremental refresh: the stored
/// function is shared (`Arc` clone), every derived scalar is carried
/// over unchanged. Sound exactly when the arc's composition cone
/// contains no changed edge — then a from-scratch rebuild would
/// recompute the identical bits.
pub(crate) fn reuse_arc(old: &OverlayArc) -> OverlayArc {
    OverlayArc {
        from: old.from,
        to: old.to,
        full: Arc::clone(&old.full),
        min: old.min,
        max: old.max,
        err: old.err,
        slope_max: old.slope_max,
        via: old.via,
        disabled: old.disabled,
    }
}

/// Append an arc built from its full-period function, wiring the
/// working in/out adjacency used during contraction.
fn push_arc(
    arcs: &mut Vec<OverlayArc>,
    out: &mut [Vec<u32>],
    inn: &mut [Vec<u32>],
    from: u32,
    to: u32,
    full: Pwl,
    via: Option<(u32, u32)>,
) -> Result<u32> {
    let id = u32::try_from(arcs.len())
        .map_err(|_| allfp::AllFpError::Internal("overlay arc storage outgrew u32 indices"))?;
    arcs.push(make_arc(from, to, full, via)?);
    out[from as usize].push(id);
    inn[to as usize].push(id);
    Ok(id)
}

/// Min-heap entry for the witness Dijkstra (`total_cmp`, node id ties).
struct WitnessEntry {
    d: f64,
    node: u32,
}

impl PartialEq for WitnessEntry {
    fn eq(&self, other: &Self) -> bool {
        self.d == other.d && self.node == other.node
    }
}
impl Eq for WitnessEntry {}
impl Ord for WitnessEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .d
            .total_cmp(&self.d)
            .then_with(|| other.node.cmp(&self.node))
    }
}
impl PartialOrd for WitnessEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Epoch-stamped distance array for witness searches: reset is O(1),
/// tentative values remain valid path-length upper bounds even when the
/// search stops before settling them. One per worker thread.
pub(crate) struct Witness {
    dist: Vec<f64>,
    stamp: Vec<u32>,
    epoch: u32,
    heap: BinaryHeap<WitnessEntry>,
}

impl Witness {
    pub(crate) fn new(n: usize) -> Self {
        Witness {
            dist: vec![f64::INFINITY; n],
            stamp: vec![0; n],
            epoch: 0,
            heap: BinaryHeap::new(),
        }
    }

    fn get(&self, node: u32) -> f64 {
        if self.stamp[node as usize] == self.epoch {
            self.dist[node as usize]
        } else {
            f64::INFINITY
        }
    }

    fn set(&mut self, node: u32, d: f64) {
        self.dist[node as usize] = d;
        self.stamp[node as usize] = self.epoch;
    }

    /// Bounded Dijkstra from `source` over the enabled remainder graph
    /// excluding `skip` (and, when planning a round, every node of the
    /// round's independent set via `in_round`), under per-arc `max`
    /// weights. Stops once the frontier exceeds `bound` or
    /// `settle_cap` nodes were settled; distances recorded up to that
    /// point are exact or tentative — both are valid upper bounds for
    /// the witness test.
    #[allow(clippy::too_many_arguments)]
    fn run(
        &mut self,
        source: u32,
        skip: u32,
        bound: f64,
        settle_cap: usize,
        arcs: &[OverlayArc],
        out: &[Vec<u32>],
        contracted: &[bool],
        in_round: Option<&[bool]>,
    ) {
        self.epoch = self.epoch.wrapping_add(1);
        self.heap.clear();
        self.set(source, 0.0);
        self.heap.push(WitnessEntry {
            d: 0.0,
            node: source,
        });
        let mut settled = 0usize;
        while let Some(WitnessEntry { d, node }) = self.heap.pop() {
            if d > self.get(node) {
                continue; // stale entry
            }
            if d > bound || settled >= settle_cap {
                break;
            }
            settled += 1;
            for &aid in &out[node as usize] {
                let arc = &arcs[aid as usize];
                if arc.disabled
                    || arc.to == skip
                    || contracted[arc.to as usize]
                    || in_round.is_some_and(|s| s[arc.to as usize])
                {
                    continue;
                }
                let nd = d + arc.max;
                if nd < self.get(arc.to) {
                    self.set(arc.to, nd);
                    self.heap.push(WitnessEntry {
                        d: nd,
                        node: arc.to,
                    });
                }
            }
        }
    }
}

/// Is `id` part of the live remainder graph?
fn alive(arcs: &[OverlayArc], contracted: &[bool], id: u32) -> bool {
    let a = &arcs[id as usize];
    !a.disabled && !contracted[a.from as usize] && !contracted[a.to as usize]
}

/// The shortcut pairs `(in-arc, out-arc)` that contracting `v` *must*
/// add — every (a, b) combination minus the witness-proved ones.
/// Read-only against the shared state, so many nodes can be planned
/// concurrently; pass the round's independent set as `in_round` so the
/// witness proofs survive every application of the round.
#[allow(clippy::too_many_arguments)]
fn needed_pairs(
    v: u32,
    arcs: &[OverlayArc],
    out: &[Vec<u32>],
    inn: &[Vec<u32>],
    contracted: &[bool],
    in_round: Option<&[bool]>,
    witness: &mut Witness,
    settle_cap: usize,
    need: &mut Vec<(u32, u32)>,
) {
    need.clear();
    let ins: Vec<u32> = inn[v as usize]
        .iter()
        .copied()
        .filter(|&id| alive(arcs, contracted, id))
        .collect();
    let outs: Vec<u32> = out[v as usize]
        .iter()
        .copied()
        .filter(|&id| alive(arcs, contracted, id))
        .collect();
    if ins.is_empty() || outs.is_empty() {
        return;
    }
    for &a in &ins {
        let u = arcs[a as usize].from;
        let mut bound = f64::NEG_INFINITY;
        let mut any = false;
        for &b in &outs {
            let w = arcs[b as usize].to;
            if w == u {
                continue;
            }
            bound = bound.max(arcs[a as usize].min + arcs[b as usize].min);
            any = true;
        }
        if !any {
            continue;
        }
        witness.run(u, v, bound, settle_cap, arcs, out, contracted, in_round);
        for &b in &outs {
            let w = arcs[b as usize].to;
            if w == u {
                continue;
            }
            let via_min = arcs[a as usize].min + arcs[b as usize].min;
            if witness.get(w) <= via_min {
                continue; // proved unnecessary
            }
            need.push((a, b));
        }
    }
}

/// Contraction priority: weighted edge difference plus the
/// deleted-neighbors level term, plus a quantized travel-minimum term
/// that contracts short local arcs (residential grids) before long
/// arterials — the time-dependent analogue of the classic
/// distance-based tie-break. Computed from alive-arc degrees only.
fn priority(
    v: u32,
    n_need: usize,
    arcs: &[OverlayArc],
    out: &[Vec<u32>],
    inn: &[Vec<u32>],
    contracted: &[bool],
    deleted: &[u32],
) -> i64 {
    let mut degree = 0usize;
    let mut travel_sum = 0.0;
    for &id in inn[v as usize].iter().chain(out[v as usize].iter()) {
        if alive(arcs, contracted, id) {
            degree += 1;
            travel_sum += arcs[id as usize].min;
        }
    }
    let edge_diff = n_need as i64 - degree as i64;
    let travel_term = if degree == 0 {
        0
    } else {
        (travel_sum / degree as f64 * 4.0) as i64
    };
    16 * edge_diff + 4 * i64::from(deleted[v as usize]) + travel_term
}

/// Compose the shortcut function for the via pair `a` then `b`, over
/// one full period. Deterministic in its inputs — snapshot restore
/// re-runs exactly this to rebuild shortcut functions bit-identically.
/// Construction-time only: both arcs must still hold their exact
/// functions.
pub(crate) fn recompose(scratch: &mut PwlScratch, a: &OverlayArc, b: &OverlayArc) -> Result<Pwl> {
    let arrivals = arrival_interval(&a.full)?;
    // Materialize `b`'s periodic extension transiently — wide enough
    // to cover the arrivals when one period of slack is not enough
    // (multi-day travel through the first arc), never losing
    // exactness.
    let periods = if ext_domain(&b.full).covers(&arrivals) {
        EXT_PERIODS
    } else {
        (arrivals.hi() / MINUTES_PER_DAY).ceil() as usize + 1
    };
    let ext = extend_periodic(&b.full, periods)?;
    let out = compose_travel_into(scratch, &a.full, &ext)?;
    scratch.recycle(ext);
    Ok(out)
}

/// One planned shortcut: the via pair and its exact composed function,
/// produced read-only during a round's parallel planning phase.
struct PlannedShortcut {
    a: u32,
    b: u32,
    full: Pwl,
}

/// Build the contracted overlay for one day category.
///
/// With `live_topology` the structure is made *metric-independent* (in
/// the CCH sense): witness pruning is disabled (`settle_cap` 0 — every
/// candidate shortcut of every contraction is inserted) and
/// parallel-arc domination is skipped, so the up–down search stays
/// exact for **any** speed-pattern assignment on this network's
/// topology — which is what lets a live refresh swap travel functions
/// under a fixed structure without re-running witness proofs.
pub(crate) fn build_overlay<S: NetworkSource>(
    source: &S,
    category: DayCategory,
    witness_settle_cap: usize,
    pool: &WorkerPool,
    compress_eps: Option<f64>,
    live_topology: bool,
) -> Result<Overlay> {
    let witness_settle_cap = if live_topology { 0 } else { witness_settle_cap };
    let n = source.n_nodes();
    let mut arcs: Vec<OverlayArc> = Vec::new();
    let mut out: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut inn: Vec<Vec<u32>> = vec![Vec::new(); n];
    let day = Interval::of(0.0, MINUTES_PER_DAY);

    let mut edges: Vec<roadnet::Edge> = Vec::new();
    for u in 0..n {
        let uid = NodeId(u as u32);
        source.successors_into(uid, &mut edges)?;
        for e in edges.drain(..) {
            if e.to.index() == u {
                continue; // self-loops never help (positive travel)
            }
            let profile = source.pattern(e.pattern)?.profile(category)?;
            let full = traffic::travel::travel_time_fn(profile, e.distance, &day)?;
            push_arc(
                &mut arcs,
                &mut out,
                &mut inn,
                u as u32,
                e.to.index() as u32,
                full,
                None,
            )?;
        }
    }
    let n_base = arcs.len();

    let mut contracted = vec![false; n];
    let mut rank = vec![0u32; n];
    let mut deleted = vec![0u32; n];
    let mut prio = vec![0i64; n];
    let mut dirty = vec![true; n];
    let mut in_round = vec![false; n];
    let mut n_disabled = 0usize;
    let mut scratch = PwlScratch::new();

    let mut next_rank = 0u32;
    let mut remaining = n;
    let mut rounds = 0u32;

    while remaining > 0 {
        rounds += 1;

        // Phase 1 — refresh priorities of dirty remainder nodes, in
        // parallel (read-only planning: witness searches only).
        let dirty_nodes: Vec<u32> = (0..n as u32)
            .filter(|&v| !contracted[v as usize] && dirty[v as usize])
            .collect();
        let fresh = pool.map_indexed(
            dirty_nodes.len(),
            || (Witness::new(n), Vec::new()),
            |i, (wit, need), _scratch| {
                let v = dirty_nodes[i];
                needed_pairs(
                    v,
                    &arcs,
                    &out,
                    &inn,
                    &contracted,
                    None,
                    wit,
                    witness_settle_cap,
                    need,
                );
                priority(v, need.len(), &arcs, &out, &inn, &contracted, &deleted)
            },
        );
        for (i, &v) in dirty_nodes.iter().enumerate() {
            prio[v as usize] = fresh[i];
            dirty[v as usize] = false;
        }

        // Phase 2 — independent set: strict local minima of
        // (priority, id) among uncontracted neighbors. Deterministic,
        // non-adjacent, and never empty (the global minimum wins
        // against every neighbor).
        let mut selected: Vec<u32> = Vec::new();
        'cand: for v in 0..n as u32 {
            if contracted[v as usize] {
                continue;
            }
            let key = (prio[v as usize], v);
            for &id in inn[v as usize].iter().chain(out[v as usize].iter()) {
                if !alive(&arcs, &contracted, id) {
                    continue;
                }
                let a = &arcs[id as usize];
                let u = if a.from == v { a.to } else { a.from };
                if u != v && (prio[u as usize], u) < key {
                    continue 'cand;
                }
            }
            selected.push(v);
        }
        for &v in &selected {
            in_round[v as usize] = true;
        }

        // Phase 3 — plan the selected nodes in parallel: witness
        // searches skip the whole independent set (so omission proofs
        // survive every application of this round), and the needed
        // shortcut functions are composed read-only from pre-round
        // arcs with per-worker scratches.
        let plans: Vec<Result<Vec<PlannedShortcut>>> = pool.map_indexed(
            selected.len(),
            || (Witness::new(n), Vec::new()),
            |i, (wit, need), scratch| {
                let v = selected[i];
                needed_pairs(
                    v,
                    &arcs,
                    &out,
                    &inn,
                    &contracted,
                    Some(&in_round),
                    wit,
                    witness_settle_cap,
                    need,
                );
                let mut plan = Vec::with_capacity(need.len());
                for &(a, b) in need.iter() {
                    let full = recompose(scratch, &arcs[a as usize], &arcs[b as usize])?;
                    plan.push(PlannedShortcut { a, b, full });
                }
                Ok(plan)
            },
        );

        // Phase 4 — apply serially in ascending node order. Members
        // are pairwise non-adjacent, so nothing applied here touches
        // an arc incident to a later member: every plan stays exactly
        // as valid as when it was computed.
        for (&v, plan) in selected.iter().zip(plans) {
            for planned in plan? {
                let (a, b) = (planned.a, planned.b);
                let (u, w) = (arcs[a as usize].from, arcs[b as usize].to);
                // Parallel-arc domination, both directions — skipped
                // in live topologies (domination is metric-dependent:
                // a dominated arc could become the winner under a
                // future delta, and disabled arcs cannot serve).
                let mut dominated = false;
                let mut to_disable: Vec<u32> = Vec::new();
                for &cid in out[u as usize].iter().filter(|_| !live_topology) {
                    if arcs[cid as usize].to != w || !alive(&arcs, &contracted, cid) {
                        continue;
                    }
                    if planned
                        .full
                        .dominated_by_with(&mut scratch, &arcs[cid as usize].full)
                    {
                        dominated = true;
                        break;
                    }
                    if arcs[cid as usize]
                        .full
                        .dominated_by_with(&mut scratch, &planned.full)
                    {
                        to_disable.push(cid);
                    }
                }
                if dominated {
                    continue;
                }
                for cid in to_disable {
                    arcs[cid as usize].disabled = true;
                    n_disabled += 1;
                }
                push_arc(
                    &mut arcs,
                    &mut out,
                    &mut inn,
                    u,
                    w,
                    planned.full,
                    Some((a, b)),
                )?;
            }

            // Retire the node and bump its neighbors' deleted
            // counters; neighbors become dirty for the next round.
            contracted[v as usize] = true;
            rank[v as usize] = next_rank;
            next_rank += 1;
            remaining -= 1;
            let mut neighbors: Vec<u32> = Vec::new();
            for &id in inn[v as usize].iter().chain(out[v as usize].iter()) {
                let a = &arcs[id as usize];
                let x = if a.to == v { a.from } else { a.to };
                if !a.disabled && !contracted[x as usize] {
                    neighbors.push(x);
                }
            }
            neighbors.sort_unstable();
            neighbors.dedup();
            for x in neighbors {
                deleted[x as usize] += 1;
                dirty[x as usize] = true;
                // Lazy adjacency cleanup, amortized over contractions.
                out[x as usize].retain(|&id| alive(&arcs, &contracted, id));
                inn[x as usize].retain(|&id| alive(&arcs, &contracted, id));
            }
        }
        for &v in &selected {
            in_round[v as usize] = false;
        }
    }

    finish_overlay(
        category,
        rank,
        arcs,
        n_base,
        n_disabled,
        rounds,
        pool,
        compress_eps,
    )
}

/// Outcome of the per-arc finalize job: band tables from the exact
/// function, plus the reduced storage when compression is on.
struct Finalized {
    bands: [f64; 2 * BANDS],
    exact_pieces: u64,
    reduced: Option<(Pwl, f64)>, // (full, measured gap)
}

/// Band tables + optional bounded-error reduction for every stored
/// arc, fanned out over the worker pool (read-only against the exact
/// arcs, results applied in index order — deterministic at any thread
/// count). Returns the completed overlay.
#[allow(clippy::too_many_arguments)]
pub(crate) fn finish_overlay(
    category: DayCategory,
    rank: Vec<u32>,
    mut arcs: Vec<OverlayArc>,
    n_base: usize,
    n_disabled: usize,
    rounds: u32,
    pool: &WorkerPool,
    compress_eps: Option<f64>,
) -> Result<Overlay> {
    let eps = compress_eps.filter(|&e| e > 0.0);
    let finalized: Vec<Result<Finalized>> = pool.map_indexed(
        arcs.len(),
        || (),
        |i, _, scratch| {
            let arc = &arcs[i];
            let mut bands = [0.0f64; 2 * BANDS];
            let d = arc.full.domain();
            let w = d.len() / BANDS as f64;
            for k in 0..BANDS {
                let b = Interval::of(d.lo() + k as f64 * w, d.lo() + (k + 1) as f64 * w);
                bands[k] = arc.full.min_over(&b)?.value;
                bands[BANDS + k] = arc.full.max_over(&b)?;
            }
            // Baseline space accounting: what the pre-derived layout
            // (exact day function + materialized `EXT_PERIODS`-day
            // extension per arc) held for this arc. `concat` only
            // appends, so the extension carried exactly
            // `EXT_PERIODS · n` pieces.
            let exact_pieces = (arc.full.n_pieces() * (1 + EXT_PERIODS)) as u64;
            let reduced = match eps {
                None => None,
                Some(e) => {
                    let (g, gap) = pwl::reduce_lower_with(scratch, &arc.full, e)?;
                    Some((g, gap))
                }
            };
            Ok(Finalized {
                bands,
                exact_pieces,
                reduced,
            })
        },
    );

    let mut band_min = Vec::with_capacity(arcs.len() * BANDS);
    let mut band_max = Vec::with_capacity(arcs.len() * BANDS);
    let mut exact_pieces = 0u64;
    for (arc, fin) in arcs.iter_mut().zip(finalized) {
        let fin = fin?;
        band_min.extend_from_slice(&fin.bands[..BANDS]);
        band_max.extend_from_slice(&fin.bands[BANDS..]);
        exact_pieces += fin.exact_pieces;
        if let Some((g, gap)) = fin.reduced {
            arc.full = Arc::new(g);
            arc.err = gap;
        }
    }

    let n = rank.len();
    let mut up_out: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut down_out: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut down_into: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut live_into: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (id, arc) in arcs.iter().enumerate() {
        if arc.disabled {
            continue;
        }
        let id = id as u32;
        live_into[arc.to as usize].push(id);
        if rank[arc.from as usize] < rank[arc.to as usize] {
            up_out[arc.from as usize].push(id);
        } else {
            down_out[arc.from as usize].push(id);
            down_into[arc.to as usize].push(id);
        }
    }
    Ok(Overlay {
        category,
        rank,
        arcs,
        up_out,
        down_out,
        down_into,
        live_into,
        n_base,
        n_disabled,
        band_min,
        band_max,
        compress_eps: eps,
        exact_pieces,
        rounds,
    })
}

/// Expand a popped label's top-level arc chain into the original node
/// sequence, recursively unpacking shortcuts (iterative stack — nested
/// shortcut depth is unbounded in adversarial contraction orders).
pub(crate) fn unpack_route(overlay: &Overlay, source: NodeId, arc_ids: &[u32]) -> Vec<NodeId> {
    let mut nodes = vec![source];
    let mut stack: Vec<u32> = Vec::new();
    for &top in arc_ids {
        stack.push(top);
        while let Some(id) = stack.pop() {
            let arc = &overlay.arcs[id as usize];
            match arc.via {
                Some((a, b)) => {
                    stack.push(b);
                    stack.push(a);
                }
                None => nodes.push(NodeId(arc.to)),
            }
        }
    }
    nodes
}
