//! Overlay construction: node ordering and time-dependent contraction.
//!
//! Contraction removes nodes one by one (cheapest first by a
//! lazy-updated edge-difference priority) and patches the remaining
//! graph with **shortcut arcs** whose weights are full piecewise-linear
//! travel-time functions, so that every fastest path of the original
//! network survives as an *up-then-down* path over the final arc set
//! (ranks ascend, then descend). Shortcut functions are built with the
//! same pooled [`compose_travel_into`] kernel the flat engine uses per
//! expansion, so the algebra is closed: a shortcut's function is a real
//! path's function, bit for bit.
//!
//! A candidate shortcut `u → v → w` is **omitted** only on proof: a
//! bounded Dijkstra from `u` over the remainder graph (without `v`)
//! under per-arc *maximum* travel times finds a witness path whose
//! worst case is no worse than the via pair's best case
//! (`dist_max(w) ≤ min(T_a) + min(T_b)`). Sum-of-max upper-bounds the
//! true travel of any path at every leaving instant (FIFO), and
//! min-of-sums lower-bounds the via travel, so dropped shortcuts can
//! never carry a strictly fastest path. Parallel arcs between the same
//! endpoints are deduplicated by pointwise domination
//! ([`Pwl::dominated_by_with`]) — the same ε-tolerant rule the flat
//! engine's dominance pruning already applies.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::sync::Arc;

use allfp::Result;
use pwl::compose::arrival_interval;
use pwl::time::MINUTES_PER_DAY;
use pwl::{compose_travel_into, Interval, Pwl, PwlScratch};
use roadnet::{NetworkSource, NodeId};
use traffic::DayCategory;

/// One arc of the overlay graph: an original edge or a shortcut.
///
/// Storage is append-only and arcs are referenced by index, so a
/// shortcut's `via` pair stays valid even after the arc it supersedes
/// is disabled by domination (disabled arcs leave the query adjacency
/// but remain unpackable).
pub(crate) struct OverlayArc {
    /// Tail node.
    pub from: u32,
    /// Head node.
    pub to: u32,
    /// Travel-time function over one full period `[0, 1440]`.
    pub full: Arc<Pwl>,
    /// The same function extended periodically (domain `[0, k·1440]`,
    /// `k ≥ 2`) so it covers arrivals of any same-day departure.
    pub ext: Arc<Pwl>,
    /// `full.min_value()` — lower bound at any leaving instant.
    pub min: f64,
    /// `full.maximum()` — upper bound at any leaving instant.
    pub max: f64,
    /// `Some((a, b))` when this is a shortcut composing arcs `a` then
    /// `b`; `None` for an original edge.
    pub via: Option<(u32, u32)>,
    /// Dominated by a parallel arc: excluded from query adjacency but
    /// kept for unpacking.
    pub disabled: bool,
}

/// The contracted overlay for one day category.
pub(crate) struct Overlay {
    /// Day category the travel functions were built for.
    pub category: DayCategory,
    /// Contraction order: `rank[v]` is the step at which `v` was
    /// contracted (higher = more important).
    pub rank: Vec<u32>,
    /// Append-only arc storage (original edges first, then shortcuts).
    pub arcs: Vec<OverlayArc>,
    /// Enabled arcs `u → v` with `rank[v] > rank[u]`, indexed by `u`.
    pub up_out: Vec<Vec<u32>>,
    /// Enabled arcs `u → v` with `rank[v] < rank[u]`, indexed by `u`.
    pub down_out: Vec<Vec<u32>>,
    /// Enabled down arcs indexed by their *head*, for the reverse
    /// reachability sweep of the query search.
    pub down_into: Vec<Vec<u32>>,
    /// Every enabled arc indexed by its *head*, for the per-query
    /// backward min-weight Dijkstra that seeds the search with exact
    /// scalar lower bounds to the target.
    pub live_into: Vec<Vec<u32>>,
    /// Number of original (non-shortcut) arcs.
    pub n_base: usize,
    /// Arcs disabled by parallel-arc domination.
    pub n_disabled: usize,
}

/// `full` repeated over `periods` consecutive days (periodic
/// extension: `T(l + 1440) = T(l)`). `concat` tolerates the ~ε seam
/// mismatch composed functions accumulate at the period boundary.
pub(crate) fn extend_periodic(full: &Pwl, periods: usize) -> Result<Pwl> {
    let mut ext = full.clone();
    for k in 1..periods.max(2) {
        ext = ext.concat(&full.shift_x(k as f64 * MINUTES_PER_DAY))?;
    }
    Ok(ext)
}

/// Append an arc built from its full-period function, wiring the
/// working in/out adjacency used during contraction.
fn push_arc(
    arcs: &mut Vec<OverlayArc>,
    out: &mut [Vec<u32>],
    inn: &mut [Vec<u32>],
    from: u32,
    to: u32,
    full: Pwl,
    via: Option<(u32, u32)>,
) -> Result<u32> {
    let ext = extend_periodic(&full, 2)?;
    let id = u32::try_from(arcs.len())
        .map_err(|_| allfp::AllFpError::Internal("overlay arc storage outgrew u32 indices"))?;
    arcs.push(OverlayArc {
        from,
        to,
        min: full.min_value(),
        max: full.maximum(),
        full: Arc::new(full),
        ext: Arc::new(ext),
        via,
        disabled: false,
    });
    out[from as usize].push(id);
    inn[to as usize].push(id);
    Ok(id)
}

/// Min-heap entry for the witness Dijkstra (`total_cmp`, node id ties).
struct WitnessEntry {
    d: f64,
    node: u32,
}

impl PartialEq for WitnessEntry {
    fn eq(&self, other: &Self) -> bool {
        self.d == other.d && self.node == other.node
    }
}
impl Eq for WitnessEntry {}
impl Ord for WitnessEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .d
            .total_cmp(&self.d)
            .then_with(|| other.node.cmp(&self.node))
    }
}
impl PartialOrd for WitnessEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Epoch-stamped distance array for witness searches: reset is O(1),
/// tentative values remain valid path-length upper bounds even when the
/// search stops before settling them.
struct Witness {
    dist: Vec<f64>,
    stamp: Vec<u32>,
    epoch: u32,
    heap: BinaryHeap<WitnessEntry>,
}

impl Witness {
    fn new(n: usize) -> Self {
        Witness {
            dist: vec![f64::INFINITY; n],
            stamp: vec![0; n],
            epoch: 0,
            heap: BinaryHeap::new(),
        }
    }

    fn get(&self, node: u32) -> f64 {
        if self.stamp[node as usize] == self.epoch {
            self.dist[node as usize]
        } else {
            f64::INFINITY
        }
    }

    fn set(&mut self, node: u32, d: f64) {
        self.dist[node as usize] = d;
        self.stamp[node as usize] = self.epoch;
    }

    /// Bounded Dijkstra from `source` over the enabled remainder graph
    /// excluding `skip`, under per-arc `max` weights. Stops once the
    /// frontier exceeds `bound` or `settle_cap` nodes were settled;
    /// distances recorded up to that point are exact or tentative —
    /// both are valid upper bounds for the witness test.
    #[allow(clippy::too_many_arguments)]
    fn run(
        &mut self,
        source: u32,
        skip: u32,
        bound: f64,
        settle_cap: usize,
        arcs: &[OverlayArc],
        out: &[Vec<u32>],
        contracted: &[bool],
    ) {
        self.epoch = self.epoch.wrapping_add(1);
        self.heap.clear();
        self.set(source, 0.0);
        self.heap.push(WitnessEntry {
            d: 0.0,
            node: source,
        });
        let mut settled = 0usize;
        while let Some(WitnessEntry { d, node }) = self.heap.pop() {
            if d > self.get(node) {
                continue; // stale entry
            }
            if d > bound || settled >= settle_cap {
                break;
            }
            settled += 1;
            for &aid in &out[node as usize] {
                let arc = &arcs[aid as usize];
                if arc.disabled || arc.to == skip || contracted[arc.to as usize] {
                    continue;
                }
                let nd = d + arc.max;
                if nd < self.get(arc.to) {
                    self.set(arc.to, nd);
                    self.heap.push(WitnessEntry {
                        d: nd,
                        node: arc.to,
                    });
                }
            }
        }
    }
}

/// Is `id` part of the live remainder graph?
fn alive(arcs: &[OverlayArc], contracted: &[bool], id: u32) -> bool {
    let a = &arcs[id as usize];
    !a.disabled && !contracted[a.from as usize] && !contracted[a.to as usize]
}

/// The shortcut pairs `(in-arc, out-arc)` that contracting `v` *must*
/// add — every (a, b) combination minus the witness-proved ones.
#[allow(clippy::too_many_arguments)]
fn plan_contraction(
    v: u32,
    arcs: &[OverlayArc],
    out: &mut [Vec<u32>],
    inn: &mut [Vec<u32>],
    contracted: &[bool],
    witness: &mut Witness,
    settle_cap: usize,
    need: &mut Vec<(u32, u32)>,
) {
    need.clear();
    inn[v as usize].retain(|&id| alive(arcs, contracted, id));
    out[v as usize].retain(|&id| alive(arcs, contracted, id));
    if inn[v as usize].is_empty() || out[v as usize].is_empty() {
        return;
    }
    let ins = inn[v as usize].clone();
    let outs = out[v as usize].clone();
    for &a in &ins {
        let u = arcs[a as usize].from;
        let mut bound = f64::NEG_INFINITY;
        let mut any = false;
        for &b in &outs {
            let w = arcs[b as usize].to;
            if w == u {
                continue;
            }
            bound = bound.max(arcs[a as usize].min + arcs[b as usize].min);
            any = true;
        }
        if !any {
            continue;
        }
        witness.run(u, v, bound, settle_cap, arcs, out, contracted);
        for &b in &outs {
            let w = arcs[b as usize].to;
            if w == u {
                continue;
            }
            let via_min = arcs[a as usize].min + arcs[b as usize].min;
            if witness.get(w) <= via_min {
                continue; // proved unnecessary
            }
            need.push((a, b));
        }
    }
}

/// Lazy-update contraction priority: weighted edge difference plus the
/// deleted-neighbors level term, plus a quantized travel-minimum term
/// that contracts short local arcs (residential grids) before long
/// arterials — the time-dependent analogue of the classic
/// distance-based tie-break.
fn priority(
    v: u32,
    n_need: usize,
    arcs: &[OverlayArc],
    out: &[Vec<u32>],
    inn: &[Vec<u32>],
    deleted: &[u32],
) -> i64 {
    let degree = inn[v as usize].len() + out[v as usize].len();
    let edge_diff = n_need as i64 - degree as i64;
    let mut travel_sum = 0.0;
    for &id in inn[v as usize].iter().chain(out[v as usize].iter()) {
        travel_sum += arcs[id as usize].min;
    }
    let travel_term = if degree == 0 {
        0
    } else {
        (travel_sum / degree as f64 * 4.0) as i64
    };
    16 * edge_diff + 4 * i64::from(deleted[v as usize]) + travel_term
}

/// Compose the shortcut function for the via pair `(a, b)`: the exact
/// travel function of `a` followed by `b`, over one full period.
/// Deterministic in its inputs — snapshot restore re-runs exactly this
/// to rebuild shortcut functions bit-identically.
pub(crate) fn recompose(
    scratch: &mut PwlScratch,
    arcs: &[OverlayArc],
    a: u32,
    b: u32,
) -> Result<Pwl> {
    let arrivals = arrival_interval(&arcs[a as usize].full)?;
    if arcs[b as usize].ext.domain().covers(&arrivals) {
        return Ok(compose_travel_into(
            scratch,
            &arcs[a as usize].full,
            &arcs[b as usize].ext,
        )?);
    }
    // Slow leg: one period of slack was not enough (multi-day travel
    // through the first arc). Extend further, never losing exactness.
    let periods = (arrivals.hi() / MINUTES_PER_DAY).ceil() as usize + 1;
    let ext = extend_periodic(&arcs[b as usize].full, periods)?;
    Ok(compose_travel_into(scratch, &arcs[a as usize].full, &ext)?)
}

/// Build the contracted overlay for one day category.
pub(crate) fn build_overlay<S: NetworkSource>(
    source: &S,
    category: DayCategory,
    witness_settle_cap: usize,
) -> Result<Overlay> {
    let n = source.n_nodes();
    let mut arcs: Vec<OverlayArc> = Vec::new();
    let mut out: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut inn: Vec<Vec<u32>> = vec![Vec::new(); n];
    let day = Interval::of(0.0, MINUTES_PER_DAY);

    let mut edges: Vec<roadnet::Edge> = Vec::new();
    for u in 0..n {
        let uid = NodeId(u as u32);
        source.successors_into(uid, &mut edges)?;
        for e in edges.drain(..) {
            if e.to.index() == u {
                continue; // self-loops never help (positive travel)
            }
            let profile = source.pattern(e.pattern)?.profile(category)?;
            let full = traffic::travel::travel_time_fn(profile, e.distance, &day)?;
            push_arc(
                &mut arcs,
                &mut out,
                &mut inn,
                u as u32,
                e.to.index() as u32,
                full,
                None,
            )?;
        }
    }
    let n_base = arcs.len();

    let mut contracted = vec![false; n];
    let mut rank = vec![0u32; n];
    let mut deleted = vec![0u32; n];
    let mut scratch = PwlScratch::new();
    let mut witness = Witness::new(n);
    let mut need: Vec<(u32, u32)> = Vec::new();
    let mut n_disabled = 0usize;

    let mut heap: BinaryHeap<Reverse<(i64, u32)>> = BinaryHeap::with_capacity(n);
    for v in 0..n as u32 {
        plan_contraction(
            v,
            &arcs,
            &mut out,
            &mut inn,
            &contracted,
            &mut witness,
            witness_settle_cap,
            &mut need,
        );
        heap.push(Reverse((
            priority(v, need.len(), &arcs, &out, &inn, &deleted),
            v,
        )));
    }

    let mut next_rank = 0u32;
    while let Some(Reverse((p, v))) = heap.pop() {
        if contracted[v as usize] {
            continue;
        }
        // Lazy update: recompute; if the node is no longer cheapest,
        // push it back and try the new front-runner.
        plan_contraction(
            v,
            &arcs,
            &mut out,
            &mut inn,
            &contracted,
            &mut witness,
            witness_settle_cap,
            &mut need,
        );
        let cur = priority(v, need.len(), &arcs, &out, &inn, &deleted);
        if cur > p {
            if let Some(&Reverse((top, _))) = heap.peek() {
                if cur > top {
                    heap.push(Reverse((cur, v)));
                    continue;
                }
            }
        }

        // Contract: add the needed shortcuts.
        for &(a, b) in &need {
            let (u, w) = (arcs[a as usize].from, arcs[b as usize].to);
            let composed = recompose(&mut scratch, &arcs, a, b)?;
            // Parallel-arc domination, both directions.
            let mut dominated = false;
            let mut to_disable: Vec<u32> = Vec::new();
            for &cid in &out[u as usize] {
                if arcs[cid as usize].to != w || !alive(&arcs, &contracted, cid) {
                    continue;
                }
                if composed.dominated_by_with(&mut scratch, &arcs[cid as usize].full) {
                    dominated = true;
                    break;
                }
                if arcs[cid as usize]
                    .full
                    .dominated_by_with(&mut scratch, &composed)
                {
                    to_disable.push(cid);
                }
            }
            if dominated {
                scratch.recycle(composed);
                continue;
            }
            for cid in to_disable {
                arcs[cid as usize].disabled = true;
                n_disabled += 1;
            }
            push_arc(&mut arcs, &mut out, &mut inn, u, w, composed, Some((a, b)))?;
        }

        // Retire the node and bump its neighbors' deleted counters.
        contracted[v as usize] = true;
        rank[v as usize] = next_rank;
        next_rank += 1;
        let mut neighbors: Vec<u32> = Vec::new();
        for &id in inn[v as usize].iter() {
            let f = arcs[id as usize].from;
            if !arcs[id as usize].disabled && !contracted[f as usize] {
                neighbors.push(f);
            }
        }
        for &id in out[v as usize].iter() {
            let t = arcs[id as usize].to;
            if !arcs[id as usize].disabled && !contracted[t as usize] {
                neighbors.push(t);
            }
        }
        neighbors.sort_unstable();
        neighbors.dedup();
        for x in neighbors {
            deleted[x as usize] += 1;
        }
    }

    Ok(finish_overlay(category, rank, arcs, n_base, n_disabled))
}

/// Split the final arc set into the query adjacency (up arcs by tail,
/// down arcs by tail and by head).
pub(crate) fn finish_overlay(
    category: DayCategory,
    rank: Vec<u32>,
    arcs: Vec<OverlayArc>,
    n_base: usize,
    n_disabled: usize,
) -> Overlay {
    let n = rank.len();
    let mut up_out: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut down_out: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut down_into: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut live_into: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (id, arc) in arcs.iter().enumerate() {
        if arc.disabled {
            continue;
        }
        let id = id as u32;
        live_into[arc.to as usize].push(id);
        if rank[arc.from as usize] < rank[arc.to as usize] {
            up_out[arc.from as usize].push(id);
        } else {
            down_out[arc.from as usize].push(id);
            down_into[arc.to as usize].push(id);
        }
    }
    Overlay {
        category,
        rank,
        arcs,
        up_out,
        down_out,
        down_into,
        live_into,
        n_base,
        n_disabled,
    }
}

/// Expand a popped label's top-level arc chain into the original node
/// sequence, recursively unpacking shortcuts (iterative stack — nested
/// shortcut depth is unbounded in adversarial contraction orders).
pub(crate) fn unpack_route(overlay: &Overlay, source: NodeId, arc_ids: &[u32]) -> Vec<NodeId> {
    let mut nodes = vec![source];
    let mut stack: Vec<u32> = Vec::new();
    for &top in arc_ids {
        stack.push(top);
        while let Some(id) = stack.pop() {
            let arc = &overlay.arcs[id as usize];
            match arc.via {
                Some((a, b)) => {
                    stack.push(b);
                    stack.push(a);
                }
                None => nodes.push(NodeId(arc.to)),
            }
        }
    }
    nodes
}
