//! Time-dependent contraction hierarchy for CapeCod road networks.
//!
//! The flat `allfp` engine answers every query by best-first path
//! expansion over the original network — thousands of expansions per
//! query on a metro-scale graph. This crate trades a one-time
//! preprocessing pass for orders-of-magnitude cheaper queries:
//!
//! 1. **Node ordering** — round-based: every round selects the
//!    independent set of remainder nodes that are strict local minima
//!    of the edge-difference/travel-minimum priority (deterministic
//!    node-id tie-break) and contracts them together, planning in
//!    parallel over a scoped worker pool and applying serially — the
//!    overlay is identical at every thread count by construction.
//! 2. **Contraction** — removing node `v` inserts shortcut arcs
//!    `u → w` whose weights are full piecewise-linear travel-time
//!    functions composed with the same pooled kernels the flat engine
//!    uses ([`pwl::compose_travel_into`]); a bounded **witness search**
//!    (max-weight Dijkstra versus min-of-via) proves most candidate
//!    shortcuts unnecessary, and parallel arcs are deduplicated by
//!    pointwise domination.
//! 3. **Storage** — stored functions are optionally replaced by
//!    bounded-error lower approximations ([`pwl::reduce_lower_with`],
//!    [`HierarchyConfig::overlay_compress`]) with per-arc error and
//!    banded min/max tables for admissible pruning — typically halving
//!    overlay bytes without touching any answer.
//! 4. **Query** — an up–down best-first search over the overlay
//!    selects the winning routes; shortcuts unpack to original edge
//!    sequences; every answer function is then **re-composed through
//!    the flat engine's own pipeline**
//!    ([`allfp::Engine::route_travel_fn`]), so answers are
//!    bit-identical to the flat engine's (the golden suite in
//!    `core/tests/hierarchy_equivalence.rs` pins this — compressed or
//!    not).
//!
//! [`HierarchyEngine`] implements [`allfp::PathfindBackend`], so the
//! admission-controlled `QueryService`, robust batches, deadlines,
//! cancellation and degraded fallbacks all work against it unchanged.
//! Queries the overlay cannot serve exactly (degenerate intervals,
//! day categories that were not preprocessed, leaving windows outside
//! `[0, 1440]`, multi-day arrival windows) transparently fall back to
//! the embedded flat engine — exactness before speed, always.
//!
//! DESIGN.md §12 documents the algebra-closure and witness-soundness
//! arguments; §13 covers parallel-contraction determinism and the
//! approximation-admissibility contract.

#![warn(clippy::unwrap_used, clippy::expect_used, clippy::redundant_clone)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod overlay;
mod pool;
mod search;

use std::sync::Arc;
use std::time::{Duration, Instant};

use allfp::baseline::constant_speed_plan;
use allfp::{
    AllFpAnswer, AllFpError, BatchStats, CacheCounters, CacheSession, CancelToken, DegradedAnswer,
    Engine, EngineConfig, EngineError, FastestPath, PathfindBackend, QueryOutcome, QuerySpec,
    QueryStats, Result, RouteComposeMemo, SingleFpAnswer,
};
use pwl::time::MINUTES_PER_DAY;
use pwl::{Envelope, Interval, Pwl};
use roadnet::overlay::{BandTable, HierarchySnapshot, OverlaySnapshot, SnapshotArc};
use roadnet::{NetworkSource, NodeId};
use traffic::DayCategory;

use crate::overlay::{
    build_overlay, finish_overlay, make_arc, reuse_arc, Overlay, OverlayArc, BANDS,
};
use crate::pool::WorkerPool;

/// Preprocessing configuration.
#[derive(Debug, Clone)]
pub struct HierarchyConfig {
    /// Day categories to contract an overlay for. Queries in other
    /// categories fall back to the flat engine.
    pub categories: Vec<DayCategory>,
    /// Settled-node cap per witness search. Higher caps prove more
    /// shortcuts unnecessary (smaller overlay, slower build); the
    /// answer is exact at any cap.
    pub witness_settle_cap: usize,
    /// Engine-level expansion valve for the overlay search, mirroring
    /// [`EngineConfig::max_expansions`].
    pub max_expansions: usize,
    /// Worker threads for contraction planning, overlay compression
    /// and snapshot restore. `0` means one per available core. The
    /// produced overlay is **identical at every setting** (pinned by
    /// the determinism suite).
    pub threads: usize,
    /// Error band (minutes) for bounded-error overlay storage:
    /// `Some(ε)` stores lower approximations within `ε` of the exact
    /// shortcut functions (answers stay bit-identical — see the crate
    /// docs); `None` stores exact functions. The default `0.1` is
    /// where the `--eps-sweep` tuning curve bends: wider bands keep
    /// shaving pieces, but pruning power falls off a cliff — and the
    /// cliff moves *left* as the network grows, because longer
    /// corridors accumulate more band error (on the full metro,
    /// `0.25` already sends query probes into minutes-long crawls
    /// that `0.1` answers at a 67x expansion saving).
    pub overlay_compress: Option<f64>,
    /// Build a **metric-independent** ("live") topology: witness
    /// pruning and parallel-arc domination are disabled, so every
    /// candidate shortcut of every contraction is inserted and no arc
    /// is disabled by metric comparisons. The structure then stays
    /// exact for *any* speed-pattern assignment on this topology,
    /// which is what [`HierarchyEngine::refreshed`] relies on to swap
    /// travel functions under a traffic delta without re-running
    /// witness proofs. Implies exact overlay storage
    /// (`overlay_compress` is ignored): an incremental refresh
    /// re-composes dirty shortcuts from their vias' *stored*
    /// functions, which must be exact.
    pub live_topology: bool,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            categories: vec![DayCategory::WORKDAY],
            witness_settle_cap: 64,
            max_expansions: 2_000_000,
            threads: 1,
            overlay_compress: Some(0.1),
            live_topology: false,
        }
    }
}

/// What preprocessing cost and produced — the numbers the benchmark
/// report prints next to the query-time speedup.
#[derive(Debug, Clone, Default)]
pub struct BuildReport {
    /// Wall-clock time of the whole preprocessing pass (all
    /// categories).
    pub build_wall: Duration,
    /// Nodes in the network.
    pub n_nodes: usize,
    /// Original (non-shortcut) arcs, summed over categories.
    pub n_original_arcs: usize,
    /// Shortcut arcs inserted, summed over categories.
    pub n_shortcuts: usize,
    /// Arcs disabled by parallel-arc domination.
    pub n_disabled: usize,
    /// Total *stored* pieces across all overlay travel functions —
    /// one **one-day** function per arc (reduced pieces when
    /// compression is on); periodic extensions are derived on demand
    /// and hold no resident pieces.
    pub overlay_pieces: u64,
    /// Estimated bytes of stored overlay function storage (24 bytes
    /// per piece: one breakpoint + one linear).
    pub bytes_estimate: u64,
    /// Pieces the *baseline* layout would carry: exact functions
    /// before reduction plus the per-arc materialized two-day
    /// periodic extension earlier revisions stored.
    pub exact_pieces: u64,
    /// Byte estimate for the baseline layout — `bytes_estimate /
    /// exact_bytes_estimate` is the storage ratio the benchmark
    /// gates on.
    pub exact_bytes_estimate: u64,
    /// Contraction rounds, summed over categories (0 for restores).
    pub rounds: u32,
    /// Resolved worker-thread count the build ran with.
    pub threads: usize,
    /// Error band the overlays were stored with.
    pub compress_eps: Option<f64>,
}

/// What an incremental refresh ([`HierarchyEngine::refreshed`])
/// rebuilt versus reused — the scoped-invalidation numbers the live
/// benchmark gates on.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RefreshReport {
    /// Wall-clock time of the whole refresh pass (all categories).
    pub refresh_wall: Duration,
    /// Base (non-shortcut) arcs across all refreshed overlays.
    pub base_total: usize,
    /// Base arcs whose travel function was rebuilt from the new
    /// network (their edge's pattern changed).
    pub base_rebuilt: usize,
    /// Shortcut arcs across all refreshed overlays.
    pub shortcuts_total: usize,
    /// Shortcut arcs re-composed because their composition cone
    /// touches a changed edge; the rest reuse stored functions
    /// verbatim.
    pub shortcuts_rebuilt: usize,
}

impl RefreshReport {
    /// Fraction of shortcut arcs the refresh had to re-compose —
    /// the scoped-invalidation metric (`0.0` when there are no
    /// shortcuts).
    pub fn invalidation_fraction(&self) -> f64 {
        if self.shortcuts_total == 0 {
            0.0
        } else {
            self.shortcuts_rebuilt as f64 / self.shortcuts_total as f64
        }
    }
}

/// A preprocessing-based [`PathfindBackend`]: answers singleFP/allFP
/// bit-identically to the flat [`Engine`] it embeds, via an up–down
/// search over the contracted overlay. See the crate docs.
pub struct HierarchyEngine<'a, S: NetworkSource> {
    flat: Engine<'a, S>,
    overlays: Vec<Overlay>,
    config: HierarchyConfig,
    report: BuildReport,
}

impl<'a, S: NetworkSource> HierarchyEngine<'a, S> {
    /// Build the hierarchy over `source` with a default (naive-
    /// estimator) flat engine for fallbacks and recomposition.
    pub fn build(source: &'a S, engine: EngineConfig, config: HierarchyConfig) -> Result<Self> {
        Self::with_flat(Engine::new(source, engine), config)
    }

    /// Build the hierarchy around an existing flat engine (its
    /// estimator still serves fallback queries; the overlay search
    /// itself computes exact scalar lower bounds per query with
    /// backward Dijkstras over the overlay's banded arc minima, which
    /// dominate any geometric estimate).
    pub fn with_flat(flat: Engine<'a, S>, config: HierarchyConfig) -> Result<Self> {
        let t0 = Instant::now();
        let pool = WorkerPool::new(config.threads);
        let compress = if config.live_topology {
            None
        } else {
            config.overlay_compress
        };
        let mut overlays = Vec::with_capacity(config.categories.len());
        for &cat in &config.categories {
            overlays.push(build_overlay(
                flat.source(),
                cat,
                config.witness_settle_cap,
                &pool,
                compress,
                config.live_topology,
            )?);
        }
        let mut engine = HierarchyEngine {
            flat,
            overlays,
            config,
            report: BuildReport::default(),
        };
        engine.report = engine.tally_report(t0.elapsed(), pool.threads());
        Ok(engine)
    }

    fn tally_report(&self, build_wall: Duration, threads: usize) -> BuildReport {
        let mut r = BuildReport {
            build_wall,
            n_nodes: self.flat.source().n_nodes(),
            threads,
            compress_eps: self.overlays.iter().find_map(|o| o.compress_eps),
            ..BuildReport::default()
        };
        for o in &self.overlays {
            r.n_original_arcs += o.n_base;
            r.n_shortcuts += o.arcs.len() - o.n_base;
            r.n_disabled += o.n_disabled;
            r.exact_pieces += o.exact_pieces;
            r.rounds += o.rounds;
            for a in &o.arcs {
                r.overlay_pieces += a.full.n_pieces() as u64;
            }
        }
        r.bytes_estimate = r.overlay_pieces * 24;
        r.exact_bytes_estimate = r.exact_pieces * 24;
        r
    }

    /// Preprocessing statistics.
    pub fn report(&self) -> &BuildReport {
        &self.report
    }

    /// The embedded flat engine (fallbacks, recomposition, cache).
    pub fn flat(&self) -> &Engine<'a, S> {
        &self.flat
    }

    fn overlay_for(&self, category: DayCategory) -> Option<&Overlay> {
        self.overlays.iter().find(|o| o.category == category)
    }

    /// Can the overlay serve this query, or must it go to the flat
    /// engine wholesale?
    fn overlay_query(&self, query: &QuerySpec) -> Option<&Overlay> {
        if query.interval.is_degenerate()
            || query.interval.lo() < 0.0
            || query.interval.hi() > MINUTES_PER_DAY
        {
            return None;
        }
        self.overlay_for(query.category)
    }

    /// Exact singleFP answer: re-compose every candidate route through
    /// the flat pipeline and keep the one with the smallest exact
    /// minimum, earlier candidates winning ties. With exact overlay
    /// storage the search returns a single candidate and this is the
    /// plain re-composition; with compressed storage the candidate
    /// set brackets the optimum and the exact re-selection lands on
    /// the same route a flat search would.
    fn exact_single(
        &self,
        routes: Vec<Vec<NodeId>>,
        query: &QuerySpec,
        session: &mut CacheSession<'_>,
        stats: QueryStats,
    ) -> Result<SingleFpAnswer> {
        let mut best: Option<(Vec<NodeId>, Arc<Pwl>)> = None;
        let mut best_min = f64::INFINITY;
        for route in routes {
            let travel = Arc::new(self.flat.route_travel_fn(&route, query, session)?);
            let m = travel.minimum().value;
            if best.is_none() || m < best_min {
                best_min = m;
                best = Some((route, travel));
            }
        }
        let (nodes, travel) = best.ok_or(AllFpError::Unreachable {
            source: query.source,
            target: query.target,
        })?;
        let m = travel.minimum();
        Ok(SingleFpAnswer {
            path: FastestPath { nodes, travel },
            travel_minutes: m.value,
            best_leaving: m.at,
            stats,
        })
    }

    /// Exact allFP answer from candidate routes (identification
    /// order): recompute each exactly, merge the lower envelope, read
    /// the partitioning off it, and compact paths by first appearance
    /// — the same assembly the flat engine performs, over the same
    /// functions, so boundaries and path order agree bit for bit.
    /// Candidates that win nowhere simply drop out. Candidate routes
    /// share corridors, so re-composition runs through a per-answer
    /// prefix memo ([`RouteComposeMemo`]) — identical fold, identical
    /// bits, fewer compositions (counted in
    /// [`QueryStats::compositions_saved`]).
    fn exact_all(
        &self,
        routes: &[Vec<NodeId>],
        query: &QuerySpec,
        session: &mut CacheSession<'_>,
        mut stats: QueryStats,
    ) -> Result<AllFpAnswer> {
        let mut memo = RouteComposeMemo::new();
        let mut fns: Vec<Arc<Pwl>> = Vec::with_capacity(routes.len());
        for route in routes {
            let (travel, saved) = self
                .flat
                .route_travel_fn_memoized(route, query, session, &mut memo)?;
            stats.compositions_saved += saved;
            fns.push(travel);
        }
        let mut env: Option<Envelope<usize>> = None;
        for (i, f) in fns.iter().enumerate() {
            match &mut env {
                None => env = Some(Envelope::new(Arc::clone(f), i)),
                Some(e) => e.merge_min_with(session.scratch_mut(), f, i)?,
            }
        }
        let env = env.ok_or(AllFpError::Unreachable {
            source: query.source,
            target: query.target,
        })?;
        let raw = env.partition();
        env.recycle_into(session.scratch_mut());
        let mut order: Vec<usize> = Vec::new();
        let mut paths: Vec<FastestPath> = Vec::new();
        let mut partition = Vec::with_capacity(raw.len());
        for (iv, route_id) in raw {
            let idx = match order.iter().position(|&p| p == route_id) {
                Some(i) => i,
                None => {
                    order.push(route_id);
                    paths.push(FastestPath {
                        nodes: routes[route_id].clone(),
                        travel: Arc::clone(&fns[route_id]),
                    });
                    paths.len() - 1
                }
            };
            partition.push((iv, idx));
        }
        let mut border: Option<Envelope<usize>> = None;
        for (i, fp) in paths.iter().enumerate() {
            match &mut border {
                None => border = Some(Envelope::new(Arc::clone(&fp.travel), i)),
                Some(b) => b.merge_min_with(session.scratch_mut(), &fp.travel, i)?,
            }
        }
        let lower_border = border.ok_or(AllFpError::Internal(
            "lower border partitioned to zero paths",
        ))?;
        Ok(AllFpAnswer {
            paths,
            partition,
            lower_border,
            stats,
        })
    }

    /// Run the overlay search for this query. `Ok(None)` means the
    /// overlay cannot serve it exactly — fall back to the flat engine.
    fn overlay_search(
        &self,
        query: &QuerySpec,
        single_only: bool,
        session: &mut CacheSession<'_>,
        cancel: Option<&CancelToken>,
    ) -> Result<Option<search::SearchRun>> {
        let Some(overlay) = self.overlay_query(query) else {
            return Ok(None);
        };
        search::run(
            overlay,
            self.flat.source(),
            query,
            single_only,
            self.config.max_expansions,
            session.scratch_mut(),
            cancel,
        )
    }

    /// Batch counterpart of [`PathfindBackend::run_robust`] with the
    /// shared work-stealing scheduler, panic isolation and
    /// cancellation — identical semantics to
    /// [`Engine::run_batch_robust`].
    pub fn run_batch_robust(
        &self,
        queries: &[QuerySpec],
        workers: usize,
        cancel: &CancelToken,
    ) -> (
        Vec<std::result::Result<QueryOutcome, EngineError>>,
        BatchStats,
    )
    where
        S: Sync,
    {
        allfp::backend::run_batch_robust(self, queries, workers, cancel)
    }

    /// Serialize the contracted structure (ranks, arc topology, via
    /// pairs) plus the v2 storage metadata: the compression band the
    /// build used (so restores reproduce the stored functions bit for
    /// bit regardless of their own configuration) and the per-arc
    /// scalar/band bound tables. Travel functions are *not* stored;
    /// [`HierarchyEngine::from_snapshot`] rebuilds them by
    /// deterministic re-composition.
    pub fn snapshot(&self) -> HierarchySnapshot {
        HierarchySnapshot {
            overlays: self
                .overlays
                .iter()
                .map(|o| OverlaySnapshot {
                    category: o.category.0,
                    ranks: o.rank.clone(),
                    arcs: o
                        .arcs
                        .iter()
                        .map(|a| SnapshotArc {
                            from: a.from,
                            to: a.to,
                            via: a.via,
                            disabled: a.disabled,
                        })
                        .collect(),
                    compress_eps: o.compress_eps.map(f64::to_bits),
                    bands: Some(BandTable {
                        n_bands: BANDS as u32,
                        arc_min: o.arcs.iter().map(|a| a.min.to_bits()).collect(),
                        arc_max: o.arcs.iter().map(|a| a.max.to_bits()).collect(),
                        arc_err: o.arcs.iter().map(|a| a.err.to_bits()).collect(),
                        arc_slope_max: o.arcs.iter().map(|a| a.slope_max.to_bits()).collect(),
                        band_min: o.band_min.iter().map(|v| v.to_bits()).collect(),
                        band_max: o.band_max.iter().map(|v| v.to_bits()).collect(),
                    }),
                })
                .collect(),
        }
    }

    /// Restore a hierarchy from a snapshot taken over the *same*
    /// network: skips node ordering and witness searches entirely and
    /// rebuilds each arc's travel function by deterministic
    /// re-composition — base arcs from the network, shortcuts from
    /// their via pairs, **level by level in parallel** over the same
    /// worker pool contraction uses (a shortcut's level is one above
    /// the deeper of its two via arcs; within a level compositions are
    /// independent and results apply in arc order, so functions come
    /// back bit-identical to the original build's at any thread
    /// count). The snapshot's stored compression band takes precedence
    /// over [`HierarchyConfig::overlay_compress`], so a restored
    /// engine equals the engine that wrote the snapshot.
    pub fn from_snapshot(
        flat: Engine<'a, S>,
        config: HierarchyConfig,
        snapshot: &HierarchySnapshot,
    ) -> Result<Self> {
        let t0 = Instant::now();
        let pool = WorkerPool::new(config.threads);
        let source = flat.source();
        let n = source.n_nodes();
        let mut overlays = Vec::with_capacity(snapshot.overlays.len());
        for snap in &snapshot.overlays {
            if snap.ranks.len() != n {
                return Err(AllFpError::Internal(
                    "overlay snapshot does not match network size",
                ));
            }
            let category = DayCategory(snap.category);
            let day = Interval::of(0.0, MINUTES_PER_DAY);
            let mut slots: Vec<Option<OverlayArc>> = Vec::with_capacity(snap.arcs.len());
            let n_base_snap = snap.arcs.iter().take_while(|a| a.via.is_none()).count();
            let mut edges: Vec<roadnet::Edge> = Vec::new();
            let mut expect = 0usize;
            for u in 0..n {
                source.successors_into(NodeId(u as u32), &mut edges)?;
                for e in edges.drain(..) {
                    if e.to.index() == u {
                        continue;
                    }
                    let rec = snap
                        .arcs
                        .get(expect)
                        .ok_or(AllFpError::Internal("overlay snapshot missing base arcs"))?;
                    if rec.via.is_some() || rec.from != u as u32 || rec.to != e.to.index() as u32 {
                        return Err(AllFpError::Internal(
                            "overlay snapshot does not match network edges",
                        ));
                    }
                    let profile = source.pattern(e.pattern)?.profile(category)?;
                    let full = traffic::travel::travel_time_fn(profile, e.distance, &day)?;
                    let mut arc = make_arc(rec.from, rec.to, full, None)?;
                    arc.disabled = rec.disabled;
                    slots.push(Some(arc));
                    expect += 1;
                }
            }
            if expect != n_base_snap {
                return Err(AllFpError::Internal(
                    "overlay snapshot base arc count mismatch",
                ));
            }

            // Stratify shortcuts by composition level so each level's
            // re-compositions are independent (a via arc is always at
            // a strictly lower level).
            let mut level = vec![0u32; snap.arcs.len()];
            let mut by_level: Vec<Vec<usize>> = Vec::new();
            for (i, rec) in snap.arcs.iter().enumerate().skip(expect) {
                let Some((a, b)) = rec.via else {
                    return Err(AllFpError::Internal(
                        "overlay snapshot interleaves base arcs after shortcuts",
                    ));
                };
                if a as usize >= i || b as usize >= i {
                    return Err(AllFpError::Internal(
                        "overlay snapshot shortcut references a later arc",
                    ));
                }
                let l = level[a as usize].max(level[b as usize]) + 1;
                level[i] = l;
                let slot = l as usize - 1;
                if by_level.len() <= slot {
                    by_level.resize(slot + 1, Vec::new());
                }
                by_level[slot].push(i);
                slots.push(None);
            }
            for ids in &by_level {
                let rebuilt = pool.map_indexed(
                    ids.len(),
                    || (),
                    |k, _, scratch| -> Result<OverlayArc> {
                        let i = ids[k];
                        let rec = &snap.arcs[i];
                        let (a, b) = rec.via.ok_or(AllFpError::Internal(
                            "overlay snapshot lost a via pair mid-restore",
                        ))?;
                        let (fa, fb) = match (&slots[a as usize], &slots[b as usize]) {
                            (Some(fa), Some(fb)) => (fa, fb),
                            _ => {
                                return Err(AllFpError::Internal(
                                    "overlay snapshot via pair not yet restored",
                                ))
                            }
                        };
                        let full = crate::overlay::recompose(scratch, fa, fb)?;
                        let mut arc = make_arc(rec.from, rec.to, full, rec.via)?;
                        arc.disabled = rec.disabled;
                        Ok(arc)
                    },
                );
                for (k, arc) in rebuilt.into_iter().enumerate() {
                    slots[ids[k]] = Some(arc?);
                }
            }
            let mut arcs: Vec<OverlayArc> = Vec::with_capacity(slots.len());
            for s in slots {
                arcs.push(s.ok_or(AllFpError::Internal(
                    "overlay snapshot restore left an arc slot empty",
                ))?);
            }
            // The stored band the build used wins over the restoring
            // configuration — bit-identical restores, always.
            let eps = snap.compress_eps.map(f64::from_bits);
            overlays.push(finish_overlay(
                category,
                snap.ranks.clone(),
                arcs,
                expect,
                snap.arcs.iter().filter(|a| a.disabled).count(),
                0,
                &pool,
                eps,
            )?);
        }
        let mut engine = HierarchyEngine {
            flat,
            overlays,
            config,
            report: BuildReport::default(),
        };
        engine.report = engine.tally_report(t0.elapsed(), pool.threads());
        Ok(engine)
    }

    /// Incrementally refresh this hierarchy for a traffic delta:
    /// rebuild exactly the arcs whose **composition cone** touches a
    /// changed edge, reuse every other arc's stored function verbatim
    /// (`Arc` clone — zero bytes recomputed), and return a new engine
    /// over the delta-applied network plus a [`RefreshReport`] of what
    /// was rebuilt.
    ///
    /// `flat` must be an engine over the **delta-applied** network —
    /// same topology (node ids, edge order) as this hierarchy's, with
    /// only speed patterns repointed — and `changed` the delta's
    /// `(from, to)` endpoint pairs
    /// ([`roadnet::DeltaReport::changed`]).
    ///
    /// Soundness: a base arc's function depends only on its own edge's
    /// pattern, and a shortcut's only on its two via arcs, so marking
    /// changed base arcs dirty and propagating `dirty[i] = dirty[a] ||
    /// dirty[b]` in one index-order pass (via indices are strictly
    /// smaller — the storage is append-only) covers every arc whose
    /// function can differ. Clean arcs re-composed from scratch would
    /// reproduce the identical bits, so reusing them keeps the result
    /// equal to a full [`HierarchyEngine::from_snapshot`] restore over
    /// the new network — pinned bit-for-bit by the refresh suite.
    ///
    /// Requires exact overlay storage (the [`HierarchyConfig::
    /// live_topology`] default): re-composition reads the vias' stored
    /// functions, and under an `ε`-band those are approximations — the
    /// rebuilt arcs would silently diverge from a from-scratch build.
    /// Note the structure itself is refreshed as-is; on a non-live
    /// topology the witness proofs and domination choices baked into
    /// it are only valid for the metric they were built over, so
    /// query-exactness after a delta additionally needs
    /// `live_topology`.
    pub fn refreshed(
        &self,
        flat: Engine<'a, S>,
        changed: &[(u32, u32)],
    ) -> Result<(Self, RefreshReport)> {
        if self.overlays.iter().any(|o| o.compress_eps.is_some()) {
            return Err(AllFpError::Internal(
                "live refresh requires exact overlay storage (overlay_compress = None)",
            ));
        }
        let t0 = Instant::now();
        let pool = WorkerPool::new(self.config.threads);
        let source = flat.source();
        let n = source.n_nodes();
        let changed_set: std::collections::HashSet<(u32, u32)> = changed.iter().copied().collect();
        let mut report = RefreshReport::default();
        let mut overlays = Vec::with_capacity(self.overlays.len());
        for o in &self.overlays {
            if o.rank.len() != n {
                return Err(AllFpError::Internal(
                    "refresh network does not match overlay size",
                ));
            }
            let day = Interval::of(0.0, MINUTES_PER_DAY);
            let mut dirty = vec![false; o.arcs.len()];
            let mut slots: Vec<Option<OverlayArc>> = Vec::with_capacity(o.arcs.len());
            let mut edges: Vec<roadnet::Edge> = Vec::new();
            let mut expect = 0usize;
            for u in 0..n {
                source.successors_into(NodeId(u as u32), &mut edges)?;
                for e in edges.drain(..) {
                    if e.to.index() == u {
                        continue;
                    }
                    let old = o
                        .arcs
                        .get(expect)
                        .ok_or(AllFpError::Internal("refresh network has extra edges"))?;
                    if old.via.is_some() || old.from != u as u32 || old.to != e.to.index() as u32 {
                        return Err(AllFpError::Internal(
                            "refresh network does not match overlay base arcs",
                        ));
                    }
                    if changed_set.contains(&(old.from, old.to)) {
                        dirty[expect] = true;
                        let profile = source.pattern(e.pattern)?.profile(o.category)?;
                        let full = traffic::travel::travel_time_fn(profile, e.distance, &day)?;
                        let mut arc = make_arc(old.from, old.to, full, None)?;
                        arc.disabled = old.disabled;
                        slots.push(Some(arc));
                        report.base_rebuilt += 1;
                    } else {
                        slots.push(Some(reuse_arc(old)));
                    }
                    expect += 1;
                }
            }
            if expect != o.n_base {
                return Err(AllFpError::Internal("refresh base arc count mismatch"));
            }
            report.base_total += expect;

            // Dirty-cone propagation + level stratification of the
            // dirty shortcuts, exactly as in `from_snapshot` but only
            // for arcs whose cone touches a changed edge.
            let mut level = vec![0u32; o.arcs.len()];
            let mut by_level: Vec<Vec<usize>> = Vec::new();
            for (i, old) in o.arcs.iter().enumerate().skip(expect) {
                let Some((a, b)) = old.via else {
                    return Err(AllFpError::Internal(
                        "overlay interleaves base arcs after shortcuts",
                    ));
                };
                if a as usize >= i || b as usize >= i {
                    return Err(AllFpError::Internal(
                        "overlay shortcut references a later arc",
                    ));
                }
                dirty[i] = dirty[a as usize] || dirty[b as usize];
                if dirty[i] {
                    let l = level[a as usize].max(level[b as usize]) + 1;
                    level[i] = l;
                    let slot = l as usize - 1;
                    if by_level.len() <= slot {
                        by_level.resize(slot + 1, Vec::new());
                    }
                    by_level[slot].push(i);
                    slots.push(None);
                    report.shortcuts_rebuilt += 1;
                } else {
                    slots.push(Some(reuse_arc(old)));
                }
            }
            report.shortcuts_total += o.arcs.len() - expect;
            for ids in &by_level {
                let rebuilt = pool.map_indexed(
                    ids.len(),
                    || (),
                    |k, _, scratch| -> Result<OverlayArc> {
                        let i = ids[k];
                        let old = &o.arcs[i];
                        let (a, b) = old
                            .via
                            .ok_or(AllFpError::Internal("refresh lost a via pair mid-pass"))?;
                        let (fa, fb) = match (&slots[a as usize], &slots[b as usize]) {
                            (Some(fa), Some(fb)) => (fa, fb),
                            _ => {
                                return Err(AllFpError::Internal(
                                    "refresh via pair not yet rebuilt",
                                ))
                            }
                        };
                        let full = crate::overlay::recompose(scratch, fa, fb)?;
                        let mut arc = make_arc(old.from, old.to, full, old.via)?;
                        arc.disabled = old.disabled;
                        Ok(arc)
                    },
                );
                for (k, arc) in rebuilt.into_iter().enumerate() {
                    slots[ids[k]] = Some(arc?);
                }
            }
            let mut arcs: Vec<OverlayArc> = Vec::with_capacity(slots.len());
            for s in slots {
                arcs.push(s.ok_or(AllFpError::Internal("refresh left an arc slot empty"))?);
            }
            overlays.push(finish_overlay(
                o.category,
                o.rank.clone(),
                arcs,
                expect,
                o.n_disabled,
                o.rounds,
                &pool,
                None,
            )?);
        }
        report.refresh_wall = t0.elapsed();
        let mut engine = HierarchyEngine {
            flat,
            overlays,
            config: self.config.clone(),
            report: BuildReport::default(),
        };
        engine.report = engine.tally_report(t0.elapsed(), pool.threads());
        Ok((engine, report))
    }
}

impl<'a, S: NetworkSource> PathfindBackend for HierarchyEngine<'a, S> {
    fn backend_name(&self) -> &'static str {
        "hierarchy"
    }

    fn cache_session(&self) -> CacheSession<'_> {
        self.flat.cache_session()
    }

    fn cache_counters(&self) -> CacheCounters {
        self.flat.cache_counters()
    }

    fn all_fastest_paths(&self, query: &QuerySpec) -> Result<AllFpAnswer> {
        let mut session = self.flat.cache_session();
        match self.overlay_search(query, false, &mut session, None)? {
            None => self.flat.all_fastest_paths(query),
            Some(run) => {
                if run.trip.is_some() {
                    return Err(AllFpError::BudgetExhausted {
                        expansions: run.stats.expanded_paths,
                    });
                }
                self.exact_all(&run.routes, query, &mut session, run.stats)
            }
        }
    }

    fn single_fastest_path(&self, query: &QuerySpec) -> Result<SingleFpAnswer> {
        let mut session = self.flat.cache_session();
        match self.overlay_search(query, true, &mut session, None)? {
            None => self.flat.single_fastest_path(query),
            Some(run) => {
                if run.trip.is_some() {
                    return Err(AllFpError::BudgetExhausted {
                        expansions: run.stats.expanded_paths,
                    });
                }
                self.exact_single(run.routes, query, &mut session, run.stats)
            }
        }
    }

    fn robust_with_session(
        &self,
        query: &QuerySpec,
        session: &mut CacheSession<'_>,
        cancel: Option<&CancelToken>,
    ) -> std::result::Result<QueryOutcome, EngineError> {
        let run = match self.overlay_search(query, false, session, cancel) {
            Ok(Some(run)) => run,
            Ok(None) => return self.flat.robust_with_session(query, session, cancel),
            Err(e) => return Err(EngineError::from(e)),
        };
        match run.trip {
            None => {
                if run.routes.is_empty() {
                    return Err(EngineError::Query(AllFpError::Unreachable {
                        source: query.source,
                        target: query.target,
                    }));
                }
                Ok(QueryOutcome::Exact(
                    self.exact_all(&run.routes, query, session, run.stats)
                        .map_err(EngineError::from)?,
                ))
            }
            Some(reason) => {
                let best = if run.routes.is_empty() {
                    None
                } else {
                    Some(
                        self.exact_all(&run.routes, query, session, run.stats)
                            .map_err(EngineError::from)?,
                    )
                };
                let (nodes, _) = constant_speed_plan(
                    self.flat.source(),
                    query.source,
                    query.target,
                    query.interval.lo(),
                    query.category,
                )
                .map_err(EngineError::from)?;
                let travel = Arc::new(
                    self.flat
                        .route_travel_fn(&nodes, query, session)
                        .map_err(EngineError::from)?,
                );
                let fallback_travel_minutes = travel.minimum().value;
                Ok(QueryOutcome::Degraded(DegradedAnswer {
                    reason,
                    best,
                    fallback: FastestPath { nodes, travel },
                    fallback_travel_minutes,
                    stats: run.stats,
                }))
            }
        }
    }
}
