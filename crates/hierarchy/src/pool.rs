//! Scoped worker pool for preprocessing parallelism.
//!
//! Contraction rounds, overlay compression and snapshot restore all
//! fan the same shape of work out: a batch of independent, read-only
//! jobs whose results must come back **in index order** so the
//! produced overlay is identical at every thread count. The pool runs
//! such batches over `std::thread::scope` with one [`PwlScratch`] per
//! worker (the per-thread-calculator idiom): scratches are checked out
//! of a shared pocket at batch start and returned warm at batch end,
//! so repeated rounds stop allocating once the buffers have grown.
//!
//! Determinism contract: the job closure must be a pure function of
//! its index plus read-only captures. The pool then guarantees the
//! result vector is independent of thread count and scheduling — the
//! parallel-vs-serial golden tests in `tests/contraction_props.rs`
//! pin this end to end.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use pwl::PwlScratch;

/// A reusable fan-out pool: fixed thread budget plus a pocket of warm
/// per-worker scratches.
pub(crate) struct WorkerPool {
    threads: usize,
    scratches: Mutex<Vec<PwlScratch>>,
}

impl WorkerPool {
    /// A pool running `threads` workers; `0` means one per available
    /// core.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            threads
        };
        WorkerPool {
            threads,
            scratches: Mutex::new(Vec::new()),
        }
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    fn checkout(&self) -> PwlScratch {
        match self.scratches.lock() {
            Ok(mut pocket) => pocket.pop().unwrap_or_default(),
            Err(_) => PwlScratch::new(),
        }
    }

    fn park(&self, scratch: PwlScratch) {
        if let Ok(mut pocket) = self.scratches.lock() {
            pocket.push(scratch);
        }
    }

    /// Run `f` for every index in `0..n`, returning the results in
    /// index order regardless of how the work was scheduled. Each
    /// worker gets its own scratch and its own `init()`-produced state
    /// (e.g. a witness-search workspace). With one thread (or one
    /// job) everything runs inline on the caller's thread.
    pub fn map_indexed<T, W, I, F>(&self, n: usize, init: I, f: F) -> Vec<T>
    where
        T: Send,
        W: Send,
        I: Fn() -> W + Sync,
        F: Fn(usize, &mut W, &mut PwlScratch) -> T + Sync,
    {
        let workers = self.threads.min(n);
        if workers <= 1 {
            let mut scratch = self.checkout();
            let mut state = init();
            let out = (0..n).map(|i| f(i, &mut state, &mut scratch)).collect();
            self.park(scratch);
            return out;
        }
        let next = AtomicUsize::new(0);
        let mut merged: Vec<(usize, T)> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let mut scratch = self.checkout();
                let (next, init, f) = (&next, &init, &f);
                handles.push(scope.spawn(move || {
                    let mut state = init();
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i, &mut state, &mut scratch)));
                    }
                    (scratch, local)
                }));
            }
            for h in handles {
                match h.join() {
                    Ok((scratch, local)) => {
                        self.park(scratch);
                        merged.extend(local);
                    }
                    // A worker panic is a bug in the job closure;
                    // resurface it on the caller's thread.
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        merged.sort_unstable_by_key(|&(i, _)| i);
        merged.into_iter().map(|(_, t)| t).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1, 2, 4, 7] {
            let pool = WorkerPool::new(threads);
            let out = pool.map_indexed(100, || 0u64, |i, _, _| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_resolves_to_available_cores() {
        let pool = WorkerPool::new(0);
        assert!(pool.threads() >= 1);
        assert_eq!(pool.map_indexed(3, || (), |i, _, _| i), vec![0, 1, 2]);
    }

    #[test]
    fn scratches_are_pooled_between_batches() {
        let pool = WorkerPool::new(2);
        let _ = pool.map_indexed(
            8,
            || (),
            |i, _, s| {
                // touch the scratch so its pool warms up
                let f = pwl::Pwl::constant(pwl::Interval::of(0.0, 1.0), i as f64);
                if let Ok(p) = f {
                    s.recycle(p);
                }
                i
            },
        );
        let pocket = pool.scratches.lock().map(|p| p.len()).unwrap_or(0);
        assert!(pocket >= 1);
    }
}
