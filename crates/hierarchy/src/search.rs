//! The up–down overlay search.
//!
//! Every fastest path of the original network survives contraction as
//! an **up-then-down** path over the overlay (ranks strictly ascend,
//! then strictly descend — see `overlay.rs` for why). The query search
//! is therefore the flat engine's best-first path expansion restricted
//! to that shape: ascending labels relax up arcs; a label may begin
//! descending through any down arc whose head can still reach the
//! target by down arcs alone (the *D-set*, one reverse sweep per
//! query); descending labels stay in the D-set. Rank monotonicity
//! makes cycles impossible, so labels need no cycle check at all.
//!
//! Before the expansion starts, two scalar backward Dijkstras run over
//! the enabled arcs: one under per-arc *maximum* weights, whose value
//! at the source is an upper bound `U` on the optimal travel at every
//! leaving instant; and one under **banded minima** — the tightest
//! per-arc lower bound stored for the leaving window
//! `[query.lo, query.hi + U]` that any answer-relevant label can
//! occupy (elapsed time along a winning route never exceeds `U`).
//! Those bounds steer the best-first order and gate each relaxation
//! *before* the expensive PWL composition; `U` additionally prunes
//! labels that are *strictly* worse than some complete route before
//! the first target label is even found. Strictness matters: in a
//! time-independent network every optimal label has `f_min == U`
//! exactly, so a non-strict cap would prune the answer itself.
//!
//! **Approximation-aware admissibility.** Stored overlay functions may
//! be bounded-error *lower* approximations (see `overlay.rs`). Each
//! label therefore brackets its true route function with a **pair** of
//! composed functions: the lower one (composition of the stored arc
//! functions — a pointwise lower bound by FIFO-monotone arrival
//! composition) and an upper one, built by composing each stored arc
//! function at the *upper* arrival and raising the result by that
//! arc's measured gap. FIFO monotonicity of the true arc arrival
//! functions makes the raised composition a pointwise upper bound, so
//! approximation error accumulates through the actual function shapes
//! rather than a worst-case slope product — which keeps the bracket
//! tight enough to prune with. Pruning uses only safe sides: candidate
//! lower bounds against the border cap (the max of the envelope of
//! merged *upper* functions), and dominance tests a new label's lower
//! function against the established label's upper function. A label
//! that has not yet crossed a lossy arc stores no separate upper
//! function (it would be bit-equal to the lower one), so exact
//! corridors — and exact storage entirely — pay nothing extra and
//! degenerate to the plain rules.
//!
//! The search only **selects** winning node sequences. Every returned
//! route is afterwards re-composed edge by edge through the flat
//! engine's own pipeline ([`allfp::Engine::route_travel_fn`]), so the
//! answer functions are bit-identical to the flat engine's — the
//! overlay's label functions never reach the caller. For singleFP the
//! search keeps collecting target candidates until no queued label can
//! beat the best candidate's guaranteed *true* minimum (the minimum of
//! its upper function); the caller then re-selects exactly among the
//! candidates, ties resolved by identification order — at zero error
//! this collapses to "first target pop wins", the exact-storage rule.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

use allfp::{AllFpError, CancelToken, DegradedReason, QuerySpec, QueryStats, Result};
use pwl::compose::arrival_interval;
use pwl::{compose_travel_into, Envelope, Pwl, PwlRef, PwlScratch};
use roadnet::{NetworkSource, NodeId};

use crate::overlay;
use crate::overlay::{unpack_route, Overlay};

/// Poll cadence for deadline/cancellation, matching the flat engine.
const WATCH_EVERY: u64 = 32;

/// One label of the overlay search: a path `s ⇒ node` over overlay
/// arcs, with its (approximate) travel function and phase flag.
struct Label {
    /// Arena index of the label this one extends (`None` for the seed).
    parent: Option<u32>,
    /// Head node.
    node: u32,
    /// Overlay arc taken to get here (`None` for the seed).
    arc: Option<u32>,
    /// Has the path taken a down arc yet? Once descending, always
    /// descending.
    desc: bool,
    /// Cached `travel.min_value()`.
    travel_min: f64,
    /// The label's travel function over the query interval — a
    /// pointwise lower bound of the true route function.
    travel: PwlRef,
    /// Pointwise **upper** bound of the true route function: the
    /// stored arc functions composed at the upper arrival and raised
    /// by each arc's measured gap. `None` while the path has not
    /// crossed a lossy arc — the upper bound is then bit-equal to
    /// `travel` and is not materialized (exact storage never pays).
    upper: Option<PwlRef>,
}

impl Label {
    /// The safe side for being *beaten*: the upper bracket when the
    /// path crossed a lossy arc, the (then exact) lower one otherwise.
    fn upper_fn(&self) -> &Pwl {
        match &self.upper {
            Some(u) => u.as_pwl(),
            None => self.travel.as_pwl(),
        }
    }

    /// Minimum of [`upper_fn`](Self::upper_fn) — a guaranteed true
    /// travel minimum achievable through this label's route.
    fn upper_min(&self) -> f64 {
        match &self.upper {
            Some(u) => u.min_value(),
            None => self.travel_min,
        }
    }
}

/// Min-heap entry (FIFO on ties, like the flat engine).
struct Entry {
    f_min: f64,
    seq: u64,
    label: usize,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.f_min == other.f_min && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .f_min
            .total_cmp(&self.f_min)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-heap entry of the scalar bound Dijkstras (no ties to break —
/// a stale entry is simply skipped).
struct BoundEntry {
    dist: f64,
    node: u32,
}

impl PartialEq for BoundEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.node == other.node
    }
}
impl Eq for BoundEntry {}
impl Ord for BoundEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}
impl PartialOrd for BoundEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Backward Dijkstra from `target` over every enabled overlay arc
/// under the scalar weight `w(arc id)`. With `w = arc.max` the value
/// at any node upper-bounds the optimal travel from it at *every*
/// leaving instant (some fixed arc sequence costs at most its
/// max-sum); with `w =` a valid lower bound per arc it lower-bounds
/// the travel of any route whose leaving instants stay inside the
/// band window. Nodes that cannot reach the target stay at `∞`.
fn scalar_sweep(overlay: &Overlay, target: NodeId, w: impl Fn(u32) -> f64) -> Vec<f64> {
    let n = overlay.rank.len();
    let mut bound = vec![f64::INFINITY; n];
    bound[target.index()] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(BoundEntry {
        dist: 0.0,
        node: target.index() as u32,
    });
    while let Some(BoundEntry { dist, node }) = heap.pop() {
        if dist > bound[node as usize] {
            continue;
        }
        for &aid in &overlay.live_into[node as usize] {
            let arc = &overlay.arcs[aid as usize];
            let next = dist + w(aid);
            if next < bound[arc.from as usize] {
                bound[arc.from as usize] = next;
                heap.push(BoundEntry {
                    dist: next,
                    node: arc.from,
                });
            }
        }
    }
    bound
}

/// What the overlay search hands back: winning routes (original node
/// sequences, identification order) for exact re-composition.
pub(crate) struct SearchRun {
    /// Deduplicated target routes in identification order. For
    /// singleFP these are the *candidates* — the caller re-selects
    /// exactly (first has priority on ties).
    pub routes: Vec<Vec<NodeId>>,
    /// `Some` when a budget tripped before the termination rule.
    pub trip: Option<DegradedReason>,
    /// Search-effort statistics (expansions here are label
    /// expansions — the speedup metric versus the flat engine).
    pub stats: QueryStats,
}

/// The top-level arc chain of label `idx`, root first.
fn arc_chain(labels: &[Label], idx: usize) -> Vec<u32> {
    let mut chain = Vec::new();
    let mut cur = Some(idx);
    while let Some(i) = cur {
        if let Some(a) = labels[i].arc {
            chain.push(a);
        }
        cur = labels[i].parent.map(|p| p as usize);
    }
    chain.reverse();
    chain
}

/// Budget watcher mirroring the flat engine's cadence.
struct Watch<'t> {
    deadline: Option<Instant>,
    max_expansions: usize,
    cancel: Option<&'t CancelToken>,
    pops: u64,
}

impl<'t> Watch<'t> {
    fn new(query: &QuerySpec, engine_cap: usize, cancel: Option<&'t CancelToken>) -> Self {
        let budget = query.budget.unwrap_or_default();
        Watch {
            deadline: budget.max_wall.map(|d| Instant::now() + d),
            max_expansions: budget
                .max_expansions
                .map_or(engine_cap, |b| b.min(engine_cap)),
            cancel,
            pops: 0,
        }
    }

    fn poll(&mut self) -> Result<Option<DegradedReason>> {
        let due = self.pops.is_multiple_of(WATCH_EVERY);
        self.pops += 1;
        if !due {
            return Ok(None);
        }
        self.poll_now()
    }

    fn poll_now(&self) -> Result<Option<DegradedReason>> {
        if self.cancel.is_some_and(CancelToken::is_cancelled) {
            return Err(AllFpError::Cancelled);
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Ok(Some(DegradedReason::DeadlineExpired));
        }
        Ok(None)
    }

    fn poll_compound(&self) -> Result<Option<DegradedReason>> {
        if self.cancel.is_none() && self.deadline.is_none() {
            return Ok(None);
        }
        self.poll_now()
    }
}

/// Run the up–down search. Returns `Ok(None)` when a label's arrival
/// window escapes an arc's periodic extension — the caller falls back
/// to the flat engine for that query (exactness before speed).
pub(crate) fn run<S: NetworkSource>(
    overlay: &Overlay,
    source: &S,
    query: &QuerySpec,
    single_only: bool,
    engine_cap: usize,
    scratch: &mut PwlScratch,
    cancel: Option<&CancelToken>,
) -> Result<Option<SearchRun>> {
    let n = overlay.rank.len();
    let target = query.target;
    // Endpoint validation only — UnknownNode parity with the flat
    // engine (the search itself never needs coordinates).
    source.find_node(target)?;
    source.find_node(query.source)?;
    let mut watch = Watch::new(query, engine_cap, cancel);
    let mut stats = QueryStats::default();

    // D-set: nodes that can reach the target over down arcs alone.
    let mut in_d = vec![false; n];
    in_d[target.index()] = true;
    let mut bfs = vec![target.index() as u32];
    while let Some(x) = bfs.pop() {
        for &aid in &overlay.down_into[x as usize] {
            let f = overlay.arcs[aid as usize].from;
            if !in_d[f as usize] {
                in_d[f as usize] = true;
                bfs.push(f);
            }
        }
    }

    // Scalar pre-passes (see module docs): `U` caps the optimal travel
    // at every leaving instant, and the banded sweep prices each arc
    // by the tightest stored lower bound over the leaving window
    // answer-relevant labels can occupy.
    let upper = scalar_sweep(overlay, target, |aid| overlay.arcs[aid as usize].max);
    let u_cap = upper[query.source.index()];
    let (w_lo, w_hi) = (query.interval.lo(), query.interval.hi() + u_cap);
    let bound = scalar_sweep(overlay, target, |aid| overlay.banded_min(aid, w_lo, w_hi));

    let mut labels: Vec<Label> = Vec::new();
    let mut heap: BinaryHeap<Entry> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut expanded_nodes = vec![false; n];
    let mut expanded_node_count = 0usize;
    // Dominance buckets per (node, phase). An ascending label can do
    // everything a descending one can, so ascending labels prune new
    // labels of both phases; descending labels prune only descending.
    let mut asc_fns: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut desc_fns: Vec<Vec<u32>> = vec![Vec::new(); n];

    // Envelope of the merged target labels' **upper** functions; its
    // max is a cap the true optimum never exceeds anywhere in the
    // interval. (With exact storage the uppers are the labels' travel
    // functions themselves — identical to the plain border rule.)
    let mut border: Option<Envelope<usize>> = None;
    let mut border_cap = f64::INFINITY;
    // singleFP stopping rule: the best candidate's guaranteed true
    // minimum (its upper function's minimum).
    let mut single_cap = f64::INFINITY;
    let mut routes: Vec<Vec<NodeId>> = Vec::new();

    // Seed. An infinite bound (target unreachable) still seeds: the
    // search pops once, relaxes nothing useful, and returns the same
    // empty route set the flat engine would.
    {
        let travel = Pwl::constant(query.interval, 0.0)?;
        let est = bound[query.source.index()];
        let travel_min = travel.min_value();
        labels.push(Label {
            parent: None,
            node: query.source.index() as u32,
            arc: None,
            desc: false,
            travel_min,
            travel: travel.into(),
            upper: None,
        });
        heap.push(Entry {
            f_min: travel_min + est,
            seq,
            label: 0,
        });
        seq += 1;
        stats.pushed += 1;
    }

    let mut trip: Option<DegradedReason> = None;
    // Arc ids to relax from the current label (reused buffer).
    let mut relax: Vec<(u32, bool)> = Vec::new();

    'search: while let Some(entry) = heap.pop() {
        let stop_cap = if single_only { single_cap } else { border_cap };
        if stop_cap.is_finite() && pwl::approx_le(stop_cap, entry.f_min) {
            break;
        }
        let node = labels[entry.label].node;

        if node == target.index() as u32 {
            // Identified a target label: record its route (dedup — two
            // distinct arc chains can unpack to one node sequence) and
            // fold its function into the border.
            let chain = arc_chain(&labels, entry.label);
            let route = unpack_route(overlay, query.source, &chain);
            if !routes.contains(&route) {
                routes.push(route);
            }
            stats.border_merges += 1;
            match &mut border {
                None => {
                    let lab = &mut labels[entry.label];
                    let f = match &mut lab.upper {
                        Some(u) => u.share(),
                        None => lab.travel.share(),
                    };
                    let b = Envelope::new(f, entry.label);
                    border_cap = b.max_value();
                    border = Some(b);
                }
                Some(b) => {
                    b.merge_min_with(scratch, labels[entry.label].upper_fn(), entry.label)?;
                    border_cap = b.max_value();
                }
            }
            single_cap = single_cap.min(labels[entry.label].upper_min());
            continue;
        }

        let tripped = match watch.poll()? {
            Some(reason) => Some(reason),
            None if stats.expanded_paths >= watch.max_expansions => {
                Some(DegradedReason::ExpansionsExhausted)
            }
            None => None,
        };
        if let Some(reason) = tripped {
            trip = Some(reason);
            break 'search;
        }

        stats.expanded_paths += 1;
        if !expanded_nodes[node as usize] {
            expanded_nodes[node as usize] = true;
            expanded_node_count += 1;
        }

        let desc = labels[entry.label].desc;
        relax.clear();
        if !desc {
            for &aid in &overlay.up_out[node as usize] {
                relax.push((aid, false));
            }
        }
        for &aid in &overlay.down_out[node as usize] {
            if in_d[overlay.arcs[aid as usize].to as usize] {
                relax.push((aid, true));
            }
        }

        let arrivals = arrival_interval(&labels[entry.label].travel)?;
        // The upper bracket arrives later; its window must be covered
        // too before its composition can be formed.
        let arrivals_up = match &labels[entry.label].upper {
            Some(u) => arrival_interval(u)?,
            None => arrivals,
        };
        for &(aid, to_desc) in &relax {
            let arc = &overlay.arcs[aid as usize];
            let to = arc.to;

            let est = bound[to as usize];
            if est.is_infinite() {
                // The head cannot reach the target over enabled arcs;
                // nothing through it can ever win.
                stats.pruned_by_border += 1;
                continue;
            }

            // Early bounds before the expensive composition: the
            // border cap (once a target label exists), and the strict
            // `U` cap — a label *definitely* above the optimum at
            // every leaving instant can never appear in an answer.
            let optimistic = labels[entry.label].travel_min + arc.min + est;
            if border_cap.is_finite() && pwl::approx_le(border_cap, optimistic) {
                stats.pruned_by_border += 1;
                continue;
            }
            if u_cap.is_finite() && pwl::definitely_lt(u_cap, optimistic) {
                stats.pruned_by_border += 1;
                continue;
            }

            if let Some(reason) = watch.poll_compound()? {
                trip = Some(reason);
                break 'search;
            }

            let ext_dom = overlay::ext_domain(&arc.full);
            if !ext_dom.covers(&arrivals) || !ext_dom.covers(&arrivals_up) {
                // Arrival window escapes the periodic extension
                // (multi-day travel): hand the whole query to the flat
                // engine rather than extend on the hot path.
                drain(&mut labels, scratch, border);
                return Ok(None);
            }
            let t_arc = overlay::ext_window(scratch, &arc.full, &arrivals)?;
            let travel = compose_travel_into(scratch, &labels[entry.label].travel, &t_arc)?;
            scratch.recycle(t_arc);
            let np = travel.n_pieces();
            stats.pieces_total += np as u64;
            stats.pieces_max = stats.pieces_max.max(np as u64);
            stats.bytes_allocated += (8 * (np + 1) + 16 * np) as u64;
            let travel_min = travel.min_value();
            let f_min = travel_min + est;

            if border_cap.is_finite() && pwl::approx_le(border_cap, f_min) {
                stats.pruned_by_border += 1;
                scratch.recycle(travel);
                continue;
            }
            if u_cap.is_finite() && pwl::definitely_lt(u_cap, f_min) {
                stats.pruned_by_border += 1;
                scratch.recycle(travel);
                continue;
            }

            // Phase-aware dominance pruning (see bucket comment above)
            // on the safe sides of the brackets: the new label's lower
            // function must clear the old label's *upper* function —
            // then old-true ≤ old-upper ≤ new-lower ≤ new-true
            // everywhere. With exact uppers this is plain domination.
            let mut covers = |l: &u32| {
                let old = &labels[*l as usize];
                travel.dominated_by_with(scratch, old.upper_fn())
            };
            let mut dominated = asc_fns[to as usize].iter().any(&mut covers);
            if !dominated && to_desc {
                dominated = desc_fns[to as usize].iter().any(&mut covers);
            }
            if dominated {
                stats.pruned_dominated += 1;
                scratch.recycle(travel);
                continue;
            }

            // The upper bracket: the stored arc function composed at
            // the upper arrival, raised by the arc's gap (see module
            // docs). Only materialized once the path is actually
            // lossy; until then it is bit-equal to `travel`.
            let upper = if labels[entry.label].upper.is_some() || arc.err > 0.0 {
                let t_up = overlay::ext_window(scratch, &arc.full, &arrivals_up)?;
                let up_prefix = match &labels[entry.label].upper {
                    Some(u) => u.as_pwl(),
                    None => labels[entry.label].travel.as_pwl(),
                };
                let mut up = compose_travel_into(scratch, up_prefix, &t_up)?;
                scratch.recycle(t_up);
                if arc.err > 0.0 {
                    up.add_scalar_in_place(arc.err);
                }
                stats.bytes_allocated += (8 * (up.n_pieces() + 1) + 16 * up.n_pieces()) as u64;
                Some(PwlRef::from(up))
            } else {
                None
            };

            let idx = labels.len();
            let parent = u32::try_from(entry.label)
                .map_err(|_| AllFpError::Internal("overlay label arena outgrew u32 indices"))?;
            labels.push(Label {
                parent: Some(parent),
                node: to,
                arc: Some(aid),
                desc: to_desc,
                travel_min,
                travel: travel.into(),
                upper,
            });
            if to_desc {
                desc_fns[to as usize].push(idx as u32);
            } else {
                asc_fns[to as usize].push(idx as u32);
            }
            heap.push(Entry {
                f_min,
                seq,
                label: idx,
            });
            seq += 1;
            stats.pushed += 1;
        }
    }

    if trip.is_some() {
        // Salvage: complete target labels still queued become answer
        // candidates (envelope merges only, no composition work).
        for e in std::mem::take(&mut heap)
            .into_sorted_vec()
            .into_iter()
            .rev()
        {
            if labels[e.label].node != target.index() as u32 {
                continue;
            }
            let chain = arc_chain(&labels, e.label);
            let route = unpack_route(overlay, query.source, &chain);
            if !routes.contains(&route) {
                routes.push(route);
            }
            stats.border_merges += 1;
        }
    }

    stats.expanded_nodes = expanded_node_count;
    drain(&mut labels, scratch, border);
    Ok(Some(SearchRun {
        routes,
        trip,
        stats,
    }))
}

/// Recycle the label arena and border into the scratch pool.
fn drain(labels: &mut Vec<Label>, scratch: &mut PwlScratch, border: Option<Envelope<usize>>) {
    for l in labels.drain(..) {
        scratch.recycle_ref(l.travel);
        if let Some(u) = l.upper {
            scratch.recycle_ref(u);
        }
    }
    if let Some(b) = border {
        b.recycle_into(scratch);
    }
}
