//! Façade crate for the *Finding Fastest Paths on A Road Network with
//! Speed Patterns* (ICDE 2006) reproduction.
//!
//! Re-exports the public API of every workspace crate under one roof,
//! so examples and downstream users can depend on a single crate:
//!
//! * [`pwl`] — piecewise-linear travel-time function algebra,
//! * [`traffic`] — CapeCod speed patterns and day categories,
//! * [`roadnet`] — the road-network model and synthetic generators,
//! * [`ccam`] — the Connectivity-Clustered Access Method disk substrate,
//! * [`allfp`] — the `IntAllFastestPaths` engine, estimators, and
//!   baselines,
//! * [`hierarchy`] — the time-dependent contraction hierarchy
//!   (preprocessing-based [`allfp::PathfindBackend`] with bit-identical
//!   answers),
//! * [`cluster`] — partition-sharded cluster serving in deterministic
//!   simulation (shard routing, replica failover, seeded chaos, and
//!   answers bit-identical to the single-node pipeline).
//!
//! # Quickstart
//!
//! The paper's §4.3 running example, end to end:
//!
//! ```
//! use fastest_paths::prelude::*;
//!
//! let (net, ids) = fastest_paths::roadnet::examples::paper_running_example();
//! let query = QuerySpec::new(
//!     ids.s,
//!     ids.e,
//!     Interval::of(hm(6, 50), hm(7, 5)),
//!     DayCategory::WORKDAY,
//! );
//! let engine = Engine::new(&net, EngineConfig::default());
//!
//! // singleFP: leave between 7:00 and 7:03 and arrive in 5 minutes.
//! let single = engine.single_fastest_path(&query).unwrap();
//! assert!((single.travel_minutes - 5.0).abs() < 1e-9);
//!
//! // allFP: the interval splits into three sub-intervals
//! // (s→e, then s→n→e, then s→e again).
//! let all = engine.all_fastest_paths(&query).unwrap();
//! assert_eq!(all.partition.len(), 3);
//! ```

pub use allfp;
pub use ccam;
pub use cluster;
pub use hierarchy;
pub use pwl;
pub use roadnet;
pub use traffic;

/// The most common imports, bundled.
pub mod prelude {
    pub use allfp::{
        AllFpAnswer, Engine, EngineConfig, EstimatorKind, FastestPath, PathfindBackend, QuerySpec,
        QueryStats, SingleFpAnswer,
    };
    pub use hierarchy::{HierarchyConfig, HierarchyEngine};
    pub use pwl::time::{fmt_duration, fmt_minutes, hm, hms};
    pub use pwl::{Interval, Pwl};
    pub use roadnet::{NetworkSource, NodeId, RoadNetwork};
    pub use traffic::{CapeCodPattern, DayCategory, PatternSchema, RoadClass, SpeedProfile};
}
