//! Whole-system integration: generate a metro, persist it through
//! CCAM onto a real file, reopen cold, precompute the boundary
//! estimator, and answer interval queries — checking every layer
//! agrees with every other.

use std::sync::Arc;

use fastest_paths::allfp::baseline::{constant_speed_plan, discrete_time, evaluate_path};
use fastest_paths::allfp::{build_estimator, NaiveLb};
use fastest_paths::ccam::{BlockStore, CcamStore, FileStore, PlacementPolicy, DEFAULT_PAGE_SIZE};
use fastest_paths::prelude::*;
use fastest_paths::roadnet::generators::{suffolk_like, MetroConfig};
use fastest_paths::roadnet::workload::sample_pairs;

#[test]
fn full_stack_round_trip() {
    let net = suffolk_like(&MetroConfig::small(4242)).unwrap();

    // persist to a real file, reopen cold
    let dir = std::env::temp_dir().join(format!("fp-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("metro.ccam");
    {
        let store: Arc<dyn BlockStore> =
            Arc::new(FileStore::create(&path, DEFAULT_PAGE_SIZE).unwrap());
        CcamStore::build(&net, store, PlacementPolicy::ConnectivityClustered, 128).unwrap();
    }
    let store: Arc<dyn BlockStore> = Arc::new(FileStore::open(&path, DEFAULT_PAGE_SIZE).unwrap());
    let disk = CcamStore::open(store, 128).unwrap();
    assert_eq!(NetworkSource::n_nodes(&disk), net.n_nodes());

    // boundary estimator precomputed from the in-memory copy, used
    // against the disk store
    let config = EngineConfig {
        estimator: EstimatorKind::Boundary { grid: 6 },
        ..EngineConfig::default()
    };
    let estimator = build_estimator(&net, &config).unwrap();
    let disk_engine = Engine::with_estimator(&disk, estimator, config);
    let mem_engine = Engine::new(&net, EngineConfig::default());

    let window = Interval::of(hm(7, 0), hm(9, 0));
    let pairs = sample_pairs(&net, 4, 1.5, 2.5, 99).unwrap();
    assert!(!pairs.is_empty());
    for p in &pairs {
        let q = QuerySpec::new(p.source, p.target, window, DayCategory::WORKDAY);
        let a = mem_engine.all_fastest_paths(&q).unwrap();
        let b = disk_engine.all_fastest_paths(&q).unwrap();
        assert_eq!(a.partition.len(), b.partition.len());
        for (x, y) in a.partition.iter().zip(b.partition.iter()) {
            assert!(x.0.approx_eq(&y.0), "{} vs {}", x.0, y.0);
            assert_eq!(a.paths[x.1].nodes, b.paths[y.1].nodes);
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn smart_planner_beats_constant_speed_during_rush() {
    // The §6 claim: knowing the patterns ("CapeCod model") beats
    // assuming speed limits, with the gap concentrated in rush hours.
    let net = suffolk_like(&MetroConfig::small(7)).unwrap();
    let engine = Engine::new(&net, EngineConfig::default());
    let pairs = sample_pairs(&net, 12, 2.0, 3.5, 3).unwrap();

    let mut smart_total = 0.0;
    let mut naive_total = 0.0;
    let leave = hm(8, 0); // heart of the morning rush
    let mut compared = 0;
    for p in &pairs {
        let q = QuerySpec::new(
            p.source,
            p.target,
            Interval::of(leave, leave),
            DayCategory::WORKDAY,
        );
        let Ok(smart) = engine.single_fastest_path(&q) else {
            continue;
        };
        let Ok((_, constant)) =
            constant_speed_plan(&net, p.source, p.target, leave, DayCategory::WORKDAY)
        else {
            continue;
        };
        smart_total += smart.travel_minutes;
        naive_total += constant;
        assert!(
            smart.travel_minutes <= constant + 1e-6,
            "smart {} worse than constant-speed {}",
            smart.travel_minutes,
            constant
        );
        compared += 1;
    }
    assert!(compared >= 8, "too few comparable pairs: {compared}");
    assert!(
        smart_total <= naive_total,
        "aggregate smart {smart_total} vs constant {naive_total}"
    );
}

#[test]
fn discrete_time_never_beats_exact() {
    let net = suffolk_like(&MetroConfig::small(55)).unwrap();
    let pairs = sample_pairs(&net, 5, 1.5, 3.0, 21).unwrap();
    let engine = Engine::new(&net, EngineConfig::default());
    let lb = NaiveLb::new(net.max_speed());
    let window = Interval::of(hm(8, 0), hm(10, 15));
    for p in &pairs {
        let q = QuerySpec::new(p.source, p.target, window, DayCategory::WORKDAY);
        let exact = engine.single_fastest_path(&q).unwrap();
        for step in [60.0, 10.0, 1.0] {
            let d =
                discrete_time(&net, p.source, p.target, &window, step, q.category, &lb).unwrap();
            assert!(
                d.travel_minutes + 1e-6 >= exact.travel_minutes,
                "discrete ({step}m) found {} below exact {}",
                d.travel_minutes,
                exact.travel_minutes
            );
            // and the discrete answer, re-driven, matches its claim
            let driven = evaluate_path(&net, &d.nodes, d.best_leave, q.category).unwrap();
            assert!((driven - d.travel_minutes).abs() < 1e-6);
        }
    }
}

#[test]
fn network_stats_report_all_classes() {
    let net = suffolk_like(&MetroConfig::small(1)).unwrap();
    let stats = fastest_paths::roadnet::NetworkStats::of(&net);
    assert!(stats.nodes > 300);
    assert!(stats.avg_out_degree > 2.0 && stats.avg_out_degree < 4.0);
    for c in stats.class_counts {
        assert!(c > 0);
    }
}
