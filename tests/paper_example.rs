//! End-to-end reproduction of every worked number in the paper's
//! running example (§4.3–§4.6), through the public façade API.

use fastest_paths::prelude::*;

fn paper_setup() -> (RoadNetwork, QuerySpec, NodeId, NodeId, NodeId) {
    let (net, ids) = fastest_paths::roadnet::examples::paper_running_example();
    let q = QuerySpec::new(
        ids.s,
        ids.e,
        Interval::of(hm(6, 50), hm(7, 5)),
        DayCategory::WORKDAY,
    );
    (net, q, ids.s, ids.n, ids.e)
}

#[test]
fn figure_3_initial_queue_functions() {
    // T(l, s→e) = 6; T(l, s→n) is 6 / ramp / 2; with T_est(n ⇒ e) = 1
    // the path via n has minimum 3 < 6, so it expands first.
    let (net, q, s, n, e) = paper_setup();
    let cat = q.category;
    let edges = net.neighbors(s).unwrap();
    let se = edges.iter().find(|ed| ed.to == e).unwrap();
    let sn = edges.iter().find(|ed| ed.to == n).unwrap();
    let t_se = fastest_paths::traffic::travel::travel_time_fn(
        net.profile(se, cat).unwrap(),
        se.distance,
        &q.interval,
    )
    .unwrap();
    let t_sn = fastest_paths::traffic::travel::travel_time_fn(
        net.profile(sn, cat).unwrap(),
        sn.distance,
        &q.interval,
    )
    .unwrap();
    assert!((t_se.minimum().value - 6.0).abs() < 1e-9);
    assert!((t_sn.minimum().value - 2.0).abs() < 1e-9);
    // naive estimate from n: d_euc(n, e) / v_max = 1 mile / 1 mpm
    assert!((net.euclidean(n, e).unwrap() / net.max_speed() - 1.0).abs() < 1e-9);
    // so min(T + T_est) via n = 2 + 1 = 3 < 6
}

#[test]
fn section_4_5_single_fp() {
    let (net, q, s, n, e) = paper_setup();
    let engine = Engine::new(&net, EngineConfig::default());
    let ans = engine.single_fastest_path(&q).unwrap();
    assert_eq!(ans.path.nodes, vec![s, n, e]);
    assert!((ans.travel_minutes - 5.0).abs() < 1e-9);
    // "Any time instant in [7:00-7:03] is an optimal leaving time"
    assert!(pwl::approx_eq(ans.best_leaving.lo(), hm(7, 0)));
    assert!(pwl::approx_eq(ans.best_leaving.hi(), hm(7, 3)));
}

#[test]
fn section_4_6_all_fp_partitioning() {
    let (net, q, s, n, e) = paper_setup();
    let engine = Engine::new(&net, EngineConfig::default());
    let ans = engine.all_fastest_paths(&q).unwrap();

    assert_eq!(ans.partition.len(), 3);
    let (iv0, p0) = &ans.partition[0];
    let (iv1, p1) = &ans.partition[1];
    let (iv2, p2) = &ans.partition[2];
    assert_eq!(ans.paths[*p0].nodes, vec![s, e]);
    assert_eq!(ans.paths[*p1].nodes, vec![s, n, e]);
    assert_eq!(ans.paths[*p2].nodes, vec![s, e]);
    assert!(pwl::approx_eq(iv0.hi(), hms(6, 58, 30)));
    assert!(pwl::approx_eq(iv1.hi(), hm(7, 6) - 18.0 / 7.0)); // 7:03:25.7
    assert!(pwl::approx_eq(iv2.hi(), hm(7, 5)));

    // termination threshold: the lower border's max is the direct
    // road's constant 6 minutes (Figure 7)
    assert!((ans.lower_border.max_value() - 6.0).abs() < 1e-9);
    // minimum travel anywhere in I is the 5-minute window
    assert!((ans.lower_border.min_value() - 5.0).abs() < 1e-9);
}

#[test]
fn both_day_categories_work() {
    let (net, q, s, n, e) = paper_setup();
    let engine = Engine::new(&net, EngineConfig::default());
    let mut q2 = q.clone();
    q2.category = DayCategory::NON_WORKDAY;
    let ans = engine.all_fastest_paths(&q2).unwrap();
    // no congestion: the 5-mile via-n route wins everywhere
    assert_eq!(ans.partition.len(), 1);
    assert_eq!(ans.paths[ans.partition[0].1].nodes, vec![s, n, e]);
}

#[test]
fn disk_backed_paper_example() {
    use fastest_paths::ccam::{CcamStore, MemStore, PlacementPolicy, DEFAULT_PAGE_SIZE};
    use std::sync::Arc;

    let (net, q, s, n, e) = paper_setup();
    let store = Arc::new(MemStore::new(DEFAULT_PAGE_SIZE));
    let disk = CcamStore::build(&net, store, PlacementPolicy::ConnectivityClustered, 16).unwrap();
    let engine = Engine::new(&disk, EngineConfig::default());
    let ans = engine.all_fastest_paths(&q).unwrap();
    assert_eq!(ans.partition.len(), 3);
    assert_eq!(ans.paths[ans.partition[1].1].nodes, vec![s, n, e]);
}
